module B = Parqo.Bitset

let t name f = Alcotest.test_case name `Quick f

let small_set = QCheck2.Gen.(map B.of_list (list_size (int_bound 8) (int_bound 15)))

let basics () =
  Alcotest.(check (list int)) "empty" [] (B.to_list B.empty);
  Alcotest.(check (list int)) "full 4" [ 0; 1; 2; 3 ] (B.to_list (B.full 4));
  Alcotest.(check (list int)) "of_list sorts+dedups" [ 1; 3; 7 ]
    (B.to_list (B.of_list [ 7; 3; 1; 3 ]));
  Alcotest.(check int) "cardinal" 3 (B.cardinal (B.of_list [ 0; 5; 9 ]));
  Alcotest.(check bool) "mem yes" true (B.mem 5 (B.of_list [ 0; 5 ]));
  Alcotest.(check bool) "mem no" false (B.mem 1 (B.of_list [ 0; 5 ]));
  Alcotest.(check int) "choose = min" 2 (B.choose (B.of_list [ 9; 2; 4 ]))

let set_algebra () =
  let a = B.of_list [ 0; 1; 2 ] and b = B.of_list [ 2; 3 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2; 3 ] (B.to_list (B.union a b));
  Alcotest.(check (list int)) "inter" [ 2 ] (B.to_list (B.inter a b));
  Alcotest.(check (list int)) "diff" [ 0; 1 ] (B.to_list (B.diff a b));
  Alcotest.(check bool) "subset" true (B.subset (B.of_list [ 1 ]) a);
  Alcotest.(check bool) "not subset" false (B.subset b a);
  Alcotest.(check bool) "disjoint" true (B.disjoint (B.of_list [ 0 ]) (B.of_list [ 1 ]));
  Alcotest.(check bool) "not disjoint" false (B.disjoint a b)

let subsets_of_size () =
  let subsets = B.subsets_of_size 4 ~size:2 in
  Alcotest.(check int) "C(4,2)=6" 6 (List.length subsets);
  List.iter (fun s -> Alcotest.(check int) "size 2" 2 (B.cardinal s)) subsets;
  (* all distinct *)
  Alcotest.(check int) "distinct" 6
    (List.length (List.sort_uniq B.compare subsets))

(* the pre-Gosper implementation: scan all 2^n masks, keep the size-k
   ones in increasing mask order — the oracle the successor enumeration
   must reproduce exactly *)
let subsets_reference n size =
  let popcount m =
    let rec go acc m = if m = 0 then acc else go (acc + 1) (m land (m - 1)) in
    go 0 m
  in
  let all = B.to_int (B.full n) in
  let result = ref [] in
  for mask = all downto 0 do
    if popcount mask = size then result := B.of_int_unsafe mask :: !result
  done;
  !result

let subsets_of_size_matches_reference () =
  for n = 0 to 12 do
    for size = 0 to n + 1 do
      let got = B.subsets_of_size n ~size in
      let want = subsets_reference n size in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d size=%d: same list" n size)
        true
        (List.length got = List.length want && List.for_all2 B.equal got want)
    done
  done

let subsets_of_size_edges () =
  Alcotest.(check (list (list int))) "size 0 = [empty]" [ [] ]
    (List.map B.to_list (B.subsets_of_size 5 ~size:0));
  Alcotest.(check int) "size > n is empty" 0
    (List.length (B.subsets_of_size 3 ~size:4));
  Alcotest.(check (list (list int))) "size = n = the full set" [ [ 0; 1; 2 ] ]
    (List.map B.to_list (B.subsets_of_size 3 ~size:3));
  Alcotest.(check (list (list int))) "n = 0" [ [] ]
    (List.map B.to_list (B.subsets_of_size 0 ~size:0));
  Alcotest.check_raises "negative size" (Invalid_argument "Bitset.subsets_of_size")
    (fun () -> ignore (B.subsets_of_size 3 ~size:(-1)))

let proper_subsets () =
  let s = B.of_list [ 0; 2; 5 ] in
  let subs = B.proper_nonempty_subsets s in
  Alcotest.(check int) "2^3-2" 6 (List.length subs);
  List.iter
    (fun sub ->
      Alcotest.(check bool) "proper" true
        (B.subset sub s && (not (B.is_empty sub)) && not (B.equal sub s)))
    subs

let errors () =
  Alcotest.check_raises "full -1" (Invalid_argument "Bitset.full") (fun () ->
      ignore (B.full (-1)));
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (B.choose B.empty))

let prop_union_cardinal =
  Helpers.qtest "cardinal(a∪b) = |a|+|b|-|a∩b|"
    QCheck2.Gen.(pair small_set small_set)
    (fun (a, b) ->
      B.cardinal (B.union a b)
      = B.cardinal a + B.cardinal b - B.cardinal (B.inter a b))

let prop_fold_iter_agree =
  Helpers.qtest "fold and to_list agree" small_set (fun s ->
      List.rev (B.fold (fun i acc -> i :: acc) s []) = B.to_list s)

let prop_roundtrip =
  Helpers.qtest "of_list ∘ to_list = id" small_set (fun s ->
      B.equal (B.of_list (B.to_list s)) s)

let suite =
  ( "bitset",
    [
      t "basics" basics;
      t "set algebra" set_algebra;
      t "subsets of size" subsets_of_size;
      t "subsets of size = reference (n <= 12)" subsets_of_size_matches_reference;
      t "subsets of size edge cases" subsets_of_size_edges;
      t "proper subsets" proper_subsets;
      t "errors" errors;
      prop_union_cardinal;
      prop_fold_iter_agree;
      prop_roundtrip;
    ] )
