(* Incremental costing: the memoized evaluation path must be bit-identical
   to the from-scratch one, on every field of the eval — the whole design
   (grafted child expansions, descriptor reuse, shape-only renumbering)
   stands on that equivalence. *)

module Cm = Parqo.Costmodel
module Op = Parqo.Op
module Q = Parqo.Query
module S = Parqo.Space
module Podp = Parqo.Podp
module Mt = Parqo.Metric
module Stats = Parqo.Search_stats
module Bitset = Parqo.Bitset

let t name f = Alcotest.test_case name `Quick f

let bits = Int64.bits_of_float

(* every float compared through its bit pattern: "close enough" would
   hide a divergence that compounds over DP levels *)
let check_eval_identical msg (a : Cm.eval) (b : Cm.eval) =
  Alcotest.(check string)
    (msg ^ ": tree")
    (Parqo.Join_tree.to_string a.Cm.tree)
    (Parqo.Join_tree.to_string b.Cm.tree);
  Alcotest.(check string)
    (msg ^ ": optree")
    (Op.to_string a.Cm.optree) (Op.to_string b.Cm.optree);
  let ids e = Op.fold (fun acc (n : Op.node) -> n.Op.id :: acc) [] e.Cm.optree in
  Alcotest.(check (list int)) (msg ^ ": optree ids") (ids a) (ids b);
  let cards e =
    Op.fold (fun acc (n : Op.node) -> bits n.Op.out_card :: acc) [] e.Cm.optree
  in
  Alcotest.(check (list int64)) (msg ^ ": optree cards") (cards a) (cards b);
  Alcotest.(check int64)
    (msg ^ ": response_time")
    (bits a.Cm.response_time) (bits b.Cm.response_time);
  Alcotest.(check int64) (msg ^ ": work") (bits a.Cm.work) (bits b.Cm.work);
  Alcotest.(check bool)
    (msg ^ ": descriptor bit-identical")
    true
    (a.Cm.descriptor = b.Cm.descriptor);
  Alcotest.(check string)
    (msg ^ ": ordering")
    (Parqo.Ordering.to_string a.Cm.ordering)
    (Parqo.Ordering.to_string b.Cm.ordering)

(* property: on random queries and random annotated trees, the cached
   evaluator (cold cache, warm cache, remember_all cache) reproduces
   [Cm.evaluate] exactly *)
let cached_matches_uncached () =
  let rng = Parqo.Rng.create 31 in
  for _ = 1 to 20 do
    let env = Helpers.random_env rng ~n:5 in
    let cache = Cm.create_cache () in
    let cache_all = Cm.create_cache ~remember_all:true () in
    for _ = 1 to 10 do
      let tree = Helpers.random_tree rng env in
      let plain = Cm.evaluate env tree in
      check_eval_identical "cold" (Cm.evaluate_cached cache env tree) plain;
      (* warm: the same tree again, now hitting remembered leaves *)
      check_eval_identical "warm" (Cm.evaluate_cached cache env tree) plain;
      check_eval_identical "remember_all"
        (Cm.evaluate_cached cache_all env tree)
        plain;
      (* second remember_all evaluation is a pure cache hit *)
      check_eval_identical "remember_all hit"
        (Cm.evaluate_cached cache_all env tree)
        plain
    done
  done

(* the ORDER BY path: a required ordering the plan does not deliver adds
   the final sort identically on both paths *)
let cached_matches_uncached_with_order () =
  let rng = Parqo.Rng.create 32 in
  for _ = 1 to 10 do
    let env = Helpers.random_env rng ~n:4 in
    (* a key no plan delivers (fresh column name) forces the sort *)
    let required = [ { Parqo.Ordering.rel = 0; column = "__orderby" } ] in
    let cache = Cm.create_cache ~remember_all:true () in
    for _ = 1 to 5 do
      let tree = Helpers.random_tree rng env in
      check_eval_identical "forced sort"
        (Cm.evaluate_cached ~required_order:required cache env tree)
        (Cm.evaluate ~required_order:required env tree);
      (* and once more with everything cached *)
      check_eval_identical "forced sort, warm"
        (Cm.evaluate_cached ~required_order:required cache env tree)
        (Cm.evaluate ~required_order:required env tree)
    done
  done

let evaluate_cached_rejects_duplicates () =
  let env = Helpers.chain_env ~n:3 () in
  let scan r = Parqo.Join_tree.access ~path:Parqo.Access_path.Seq_scan r in
  let dup =
    Parqo.Join_tree.join Parqo.Join_method.Hash_join
      ~outer:(Parqo.Join_tree.join Parqo.Join_method.Hash_join ~outer:(scan 0)
                ~inner:(scan 1))
      ~inner:(scan 0)
  in
  let cache = Cm.create_cache () in
  Alcotest.check_raises "duplicate relation"
    (Invalid_argument "Costmodel: relation used more than once") (fun () ->
      ignore (Cm.evaluate_cached cache env dup))

let plan_str (e : Cm.eval) = Parqo.Join_tree.to_string e.Cm.tree

let check_result_identical msg (a : Podp.result) (b : Podp.result) =
  (match (a.Podp.best, b.Podp.best) with
  | Some x, Some y -> check_eval_identical (msg ^ ": best") x y
  | None, None -> ()
  | _ -> Alcotest.failf "%s: one run found a plan, the other did not" msg);
  Alcotest.(check (list string))
    (msg ^ ": cover")
    (List.map plan_str a.Podp.cover)
    (List.map plan_str b.Podp.cover);
  Alcotest.(check (list int))
    (msg ^ ": level sizes")
    (Array.to_list a.Podp.level_sizes)
    (Array.to_list b.Podp.level_sizes);
  Alcotest.(check int) (msg ^ ": generated") a.Podp.stats.Stats.generated
    b.Podp.stats.Stats.generated;
  Alcotest.(check int) (msg ^ ": considered") a.Podp.stats.Stats.considered
    b.Podp.stats.Stats.considered

(* property: the whole search is bit-identical with the plan cache on and
   off — sequentially and across the domain pool *)
let podp_identical_cache_on_off () =
  let rng = Parqo.Rng.create 33 in
  for _ = 1 to 3 do
    let env = Helpers.random_env rng ~n:4 in
    let config = { S.default_config with S.clone_degrees = [ 1; 2 ] } in
    let metric =
      Mt.with_ordering (Mt.descriptor env.Parqo.Env.machine Parqo.Machine.Single)
    in
    List.iter
      (fun domains ->
        let off =
          Podp.optimize ~config ~metric ~domains ~plan_cache:false env
        in
        let on = Podp.optimize ~config ~metric ~domains ~plan_cache:true env in
        check_result_identical
          (Printf.sprintf "domains=%d" domains)
          off on)
      [ 1; 4 ]
  done

(* the beam tie-break exercises Join_tree.key as the total order *)
let podp_identical_cache_on_off_beamed () =
  let env = Helpers.chain_env ~n:5 () in
  let config = S.parallel_config env.Parqo.Env.machine in
  let metric =
    Mt.with_ordering (Mt.descriptor env.Parqo.Env.machine Parqo.Machine.Single)
  in
  let off =
    Podp.optimize ~config ~metric ~max_cover:4 ~plan_cache:false env
  in
  let on = Podp.optimize ~config ~metric ~max_cover:4 ~plan_cache:true env in
  check_result_identical "beam=4" off on

(* plan keys are canonical: equal strings iff equal trees, and identical
   to the legacy to_string rendering *)
let key_is_canonical () =
  let rng = Parqo.Rng.create 34 in
  let env = Helpers.random_env rng ~n:4 in
  let trees = List.init 50 (fun _ -> Helpers.random_tree rng env) in
  List.iter
    (fun a ->
      Alcotest.(check string) "key = to_string" (Parqo.Join_tree.to_string a)
        (Parqo.Join_tree.key a);
      List.iter
        (fun b ->
          Alcotest.(check bool) "key injective" (Parqo.Join_tree.equal a b)
            (String.equal (Parqo.Join_tree.key a) (Parqo.Join_tree.key b)))
        trees)
    trees

let plan_cache_counters () =
  let c = Parqo.Plan_cache.create () in
  Alcotest.(check (option int)) "miss" None (Parqo.Plan_cache.find c "a");
  Parqo.Plan_cache.remember c "a" 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Parqo.Plan_cache.find c "a");
  Alcotest.(check int) "one entry" 1 (Parqo.Plan_cache.length c);
  Alcotest.(check int) "hits" 1 (Parqo.Plan_cache.hits c);
  Alcotest.(check int) "misses" 1 (Parqo.Plan_cache.misses c);
  Alcotest.(check int) "find_or_add computes" 2
    (Parqo.Plan_cache.find_or_add c "b" (fun () -> 2));
  Alcotest.(check int) "find_or_add reuses" 2
    (Parqo.Plan_cache.find_or_add c "b" (fun () -> 3));
  Parqo.Plan_cache.clear c;
  Alcotest.(check int) "cleared" 0 (Parqo.Plan_cache.length c)

(* epoch invalidation: bump empties the table, keeps the counters, and
   makes writes observed under an older epoch vanish *)
let plan_cache_epochs () =
  let c = Parqo.Plan_cache.create () in
  Alcotest.(check int) "initial epoch" 0 (Parqo.Plan_cache.epoch c);
  Parqo.Plan_cache.remember c "a" 1;
  ignore (Parqo.Plan_cache.find c "a");
  let hits = Parqo.Plan_cache.hits c in
  Parqo.Plan_cache.bump c;
  Alcotest.(check int) "epoch advanced" 1 (Parqo.Plan_cache.epoch c);
  Alcotest.(check int) "table emptied" 0 (Parqo.Plan_cache.length c);
  Alcotest.(check int) "counters preserved" hits (Parqo.Plan_cache.hits c);
  Alcotest.(check (option int)) "old entry gone" None (Parqo.Plan_cache.find c "a");
  (* a write computed under the old epoch is silently dropped *)
  Parqo.Plan_cache.remember_at c ~epoch:0 "stale" 7;
  Alcotest.(check (option int)) "stale write dropped" None
    (Parqo.Plan_cache.find c "stale");
  (* one computed under the current epoch lands *)
  Parqo.Plan_cache.remember_at c ~epoch:1 "fresh" 8;
  Alcotest.(check (option int)) "current write lands" (Some 8)
    (Parqo.Plan_cache.find c "fresh")

(* shards: private overlays over a shared published snapshot — the
   visibility rules the PODP level loop is built on *)
let plan_cache_shards () =
  let c = Parqo.Plan_cache.create () in
  Parqo.Plan_cache.remember c "base" 1;
  let s = Parqo.Plan_cache.shard c in
  Alcotest.(check (option int)) "unpublished parent write invisible" None
    (Parqo.Plan_cache.find s "base");
  Parqo.Plan_cache.publish c;
  Alcotest.(check (option int)) "published entry visible to shard" (Some 1)
    (Parqo.Plan_cache.find s "base");
  Parqo.Plan_cache.remember s "w" 2;
  Alcotest.(check (option int)) "shard write private until absorbed" None
    (Parqo.Plan_cache.find c "w");
  Alcotest.(check (option int)) "shard reads own write" (Some 2)
    (Parqo.Plan_cache.find s "w");
  Parqo.Plan_cache.absorb c s;
  Alcotest.(check (option int)) "absorbed into parent" (Some 2)
    (Parqo.Plan_cache.find c "w");
  (* shard counters (1 miss on "base" pre-publish; hits on "base"
     post-publish and on its own "w") fold into the parent's: parent saw
     1 miss ("w" pre-absorb) + 1 hit ("w" post-absorb) of its own *)
  Alcotest.(check int) "hits absorbed" 3 (Parqo.Plan_cache.hits c);
  Alcotest.(check int) "misses absorbed" 2 (Parqo.Plan_cache.misses c);
  Alcotest.(check int) "shard counters drained" 0
    (Parqo.Plan_cache.hits s + Parqo.Plan_cache.misses s);
  (* epoch is shared across shards *)
  let s2 = Parqo.Plan_cache.shard c in
  Parqo.Plan_cache.bump c;
  Alcotest.(check int) "bump visible through shard" 1
    (Parqo.Plan_cache.epoch s2)

(* the published snapshot really is read in parallel: every domain reads
   every key through its own shard while the parent sleeps on nothing *)
let plan_cache_parallel_reads () =
  let c = Parqo.Plan_cache.create () in
  let n = 1000 in
  for i = 0 to n - 1 do
    Parqo.Plan_cache.remember c (string_of_int i) i
  done;
  Parqo.Plan_cache.publish c;
  let readers =
    List.init 4 (fun _ ->
        let s = Parqo.Plan_cache.shard c in
        Domain.spawn (fun () ->
            let ok = ref true in
            for i = 0 to n - 1 do
              match Parqo.Plan_cache.find s (string_of_int i) with
              | Some v when v = i -> ()
              | _ -> ok := false
            done;
            !ok))
  in
  List.iter
    (fun d -> Alcotest.(check bool) "reader saw every entry" true (Domain.join d))
    readers

(* adjacency bitsets agree with a direct scan of the predicate list *)
let connected_between_oracle () =
  let rng = Parqo.Rng.create 35 in
  for _ = 1 to 20 do
    let env = Helpers.random_env rng ~n:5 in
    let q = Parqo.Env.query env in
    let n = Q.n_relations q in
    let oracle s1 s2 =
      List.exists
        (fun (p : Q.join_pred) ->
          (Bitset.mem p.Q.left.Q.rel s1 && Bitset.mem p.Q.right.Q.rel s2)
          || (Bitset.mem p.Q.right.Q.rel s1 && Bitset.mem p.Q.left.Q.rel s2))
        q.Q.joins
    in
    for s1 = 0 to (1 lsl n) - 1 do
      for s2 = 0 to (1 lsl n) - 1 do
        let s1 = Bitset.of_int_unsafe s1 and s2 = Bitset.of_int_unsafe s2 in
        Alcotest.(check bool) "connected_between = oracle" (oracle s1 s2)
          (Q.connected_between q s1 s2);
        Alcotest.(check bool) "joins_between nonempty iff connected"
          (oracle s1 s2)
          (Q.joins_between q s1 s2 <> [])
      done
    done
  done

let suite =
  ( "plan_cache",
    [
      t "evaluate_cached = evaluate, bit for bit" cached_matches_uncached;
      t "evaluate_cached honors required_order" cached_matches_uncached_with_order;
      t "evaluate_cached rejects duplicate relations" evaluate_cached_rejects_duplicates;
      t "podp identical with cache on/off, 1 and 4 domains" podp_identical_cache_on_off;
      t "podp identical under beam trim" podp_identical_cache_on_off_beamed;
      t "Join_tree.key is canonical" key_is_canonical;
      t "Plan_cache counters" plan_cache_counters;
      t "Plan_cache epochs" plan_cache_epochs;
      t "Plan_cache shards and publish" plan_cache_shards;
      t "Plan_cache parallel snapshot reads" plan_cache_parallel_reads;
      t "Query.connected_between matches predicate scan" connected_between_oracle;
    ] )
