module Sim = Parqo.Simulator
module TG = Parqo.Task_graph
module J = Parqo.Join_tree
module M = Parqo.Join_method
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

(* hand-built graphs exercise the scheduler in isolation *)
let graph ~n_resources stages =
  {
    TG.stages =
      Array.of_list
        (List.mapi
           (fun i (tasks, deps) ->
             {
               TG.stage_id = i;
               tasks =
                 List.mapi
                   (fun j demands ->
                     { TG.task_id = (i * 100) + j; label = Printf.sprintf "t%d_%d" i j; demands })
                   tasks;
               deps;
               op_root = None;
             })
           stages);
    n_resources;
    root_stage = 0;
  }

let single_task () =
  let g = graph ~n_resources:2 [ ([ [| 5.; 3. |] ], []) ] in
  let o = Sim.run g in
  (* a task works its resources concurrently: bottleneck = 5 *)
  Helpers.check_float "makespan = bottleneck" 5. o.Sim.makespan;
  Helpers.check_float "busy r0" 5. o.Sim.busy.(0);
  Helpers.check_float "busy r1" 3. o.Sim.busy.(1);
  Helpers.check_float "total work" 8. o.Sim.total_work

let independent_tasks_disjoint () =
  let g = graph ~n_resources:2 [ ([ [| 6.; 0. |]; [| 0.; 4. |] ], []) ] in
  let o = Sim.run g in
  Helpers.check_float "parallel = max" 6. o.Sim.makespan

let contended_tasks_share () =
  (* two tasks, same resource: processor sharing; both finish at 12 *)
  let g = graph ~n_resources:1 [ ([ [| 6. |]; [| 6. |] ], []) ] in
  let o = Sim.run g in
  Helpers.check_float "shared = sum" 12. o.Sim.makespan;
  Helpers.check_float "busy = sum" 12. o.Sim.busy.(0)

let asymmetric_sharing () =
  (* 2 and 6 units on one resource: the short task finishes at 4 (half
     rate), then the long one runs alone: 4 + 4 = 8 = total work *)
  let g = graph ~n_resources:1 [ ([ [| 2. |]; [| 6. |] ], []) ] in
  let o = Sim.run g in
  Helpers.check_float "work-conserving" 8. o.Sim.makespan

let dependencies_serialize () =
  (* stage 0 (root) depends on stage 1 *)
  let g =
    graph ~n_resources:1 [ ([ [| 3. |] ], [ 1 ]); ([ [| 4. |] ], []) ]
  in
  let o = Sim.run g in
  Helpers.check_float "sequential stages" 7. o.Sim.makespan;
  (* finish order: stage 1 then stage 0 *)
  (match o.Sim.stage_finish with
  | (s1, t1) :: (s0, t0) :: _ ->
    Alcotest.(check int) "dep first" 1 s1;
    Alcotest.(check int) "root last" 0 s0;
    Helpers.check_float "dep at 4" 4. t1;
    Helpers.check_float "root at 7" 7. t0
  | _ -> Alcotest.fail "expected two stage completions")

let diamond_dependencies () =
  (* root <- {a, b} on different resources: a and b run in parallel *)
  let g =
    graph ~n_resources:2
      [ ([ [| 1.; 0. |] ], [ 1; 2 ]); ([ [| 4.; 0. |] ], []); ([ [| 0.; 6. |] ], []) ]
  in
  let o = Sim.run g in
  Helpers.check_float "max(4,6)+1" 7. o.Sim.makespan

let serialized_mode () =
  let g =
    graph ~n_resources:2
      [ ([ [| 6.; 0. |]; [| 0.; 4. |] ], [ 1 ]); ([ [| 2.; 2. |] ], []) ]
  in
  let o = Sim.run ~mode:Sim.Serialized g in
  Helpers.check_float "serialized = total work" o.Sim.total_work o.Sim.makespan;
  let c = Sim.run ~mode:Sim.Concurrent g in
  Alcotest.(check bool) "concurrent at least as fast" true
    (c.Sim.makespan <= o.Sim.makespan +. 1e-9)

(* the property of stretching (§5.2.1): scaling every demand by f scales
   the schedule by f and nothing else changes structurally *)
let stretching_property () =
  let demands = [ [| 3.; 1. |]; [| 2.; 5. |] ] in
  let g = graph ~n_resources:2 [ (demands, []) ] in
  let scaled =
    graph ~n_resources:2
      [ (List.map (Array.map (fun d -> d *. 2.5)) demands, []) ]
  in
  let o = Sim.run g and s = Sim.run scaled in
  Helpers.check_float ~eps:1e-6 "makespan scales" (o.Sim.makespan *. 2.5)
    s.Sim.makespan

let work_conservation_random () =
  let rng = Parqo.Rng.create 44 in
  for _ = 1 to 20 do
    let n_stages = 1 + Parqo.Rng.int rng 4 in
    let stages =
      List.init n_stages (fun i ->
          let tasks =
            List.init
              (1 + Parqo.Rng.int rng 3)
              (fun _ -> Array.init 3 (fun _ -> Parqo.Rng.float rng 10.))
          in
          (* stage i > 0 depends on a random earlier... root is 0, deps
             must avoid cycles: let stage i depend on some j > i *)
          let deps =
            if i < n_stages - 1 && Parqo.Rng.bool rng then [ i + 1 ] else []
          in
          (tasks, deps))
    in
    let g = graph ~n_resources:3 stages in
    let o = Sim.run g in
    Helpers.check_float ~eps:1e-6 "busy sums to work" o.Sim.total_work
      (Array.fold_left ( +. ) 0. o.Sim.busy);
    (* makespan lower bounds: busiest resource; upper: total work *)
    let busiest =
      Array.fold_left Float.max 0.
        (Array.mapi (fun _ b -> b) o.Sim.busy)
    in
    Alcotest.(check bool) "makespan >= busiest resource" true
      (o.Sim.makespan +. 1e-9 >= busiest);
    Alcotest.(check bool) "makespan <= total work" true
      (o.Sim.makespan <= o.Sim.total_work +. 1e-9)
  done

let plan_simulation_consistency () =
  (* simulating a plan agrees with its task graph's totals *)
  let catalog, query = G.generate (G.default_spec G.Chain 3) in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let tree =
    J.join M.Hash_join
      ~outer:(J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1))
      ~inner:(J.access 2)
  in
  let o = Sim.simulate_plan env tree in
  Alcotest.(check bool) "positive makespan" true (o.Sim.makespan > 0.);
  let util = Sim.utilization o in
  Alcotest.(check bool) "utilization in (0,1]" true (util > 0. && util <= 1.)

let cloning_speeds_simulation () =
  let catalog, query = G.generate (G.default_spec G.Chain 3) in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env = Parqo.Env.create ~machine ~catalog ~query () in
  let plan clone =
    J.join ~clone M.Hash_join
      ~outer:(J.join ~clone M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1))
      ~inner:(J.access 2)
  in
  let seq = Sim.simulate_plan env (plan 1) in
  let par = Sim.simulate_plan env (plan 4) in
  Alcotest.(check bool) "cloned plan simulates faster" true
    (par.Sim.makespan < seq.Sim.makespan)

let timeline_rendering () =
  let g =
    graph ~n_resources:1 [ ([ [| 3. |] ], [ 1 ]); ([ [| 4. |] ], []) ]
  in
  let o = Sim.run g in
  let text = Sim.timeline ~width:20 o in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "one row per stage" 2 (List.length lines);
  (* the dependency stage's row comes first (it starts first) *)
  Alcotest.(check bool) "dep row first" true
    (String.length (List.hd lines) > 0
    && String.sub (List.hd lines) 0 7 = "stage 1");
  (* starts recorded *)
  Alcotest.(check (list (pair int (float 1e-9)))) "starts"
    [ (0, 4.); (1, 0.) ]
    (List.sort compare o.Sim.stage_start)

let suite =
  ( "simulator",
    [
      t "timeline rendering" timeline_rendering;
      t "single task" single_task;
      t "independent disjoint" independent_tasks_disjoint;
      t "contended share" contended_tasks_share;
      t "asymmetric sharing" asymmetric_sharing;
      t "dependencies serialize" dependencies_serialize;
      t "diamond dependencies" diamond_dependencies;
      t "serialized mode" serialized_mode;
      t "stretching property" stretching_property;
      t "work conservation (random)" work_conservation_random;
      t "plan simulation" plan_simulation_consistency;
      t "cloning speeds simulation" cloning_speeds_simulation;
    ] )
