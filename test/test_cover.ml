module C = Parqo.Cover
module Combin = Parqo.Combin

let t name f = Alcotest.test_case name `Quick f

(* dominance on int pairs: componentwise <= *)
let dom2 (a1, a2) (b1, b2) = a1 <= b1 && a2 <= b2

let maintenance () =
  let c = C.create ~dominates:dom2 in
  Alcotest.(check bool) "insert first" true (C.add c (5, 5));
  Alcotest.(check bool) "dominated rejected" false (C.add c (6, 6));
  Alcotest.(check bool) "incomparable accepted" true (C.add c (3, 8));
  Alcotest.(check int) "two elements" 2 (C.size c);
  (* a dominating element evicts both *)
  Alcotest.(check bool) "dominator accepted" true (C.add c (1, 1));
  Alcotest.(check int) "evicted to one" 1 (C.size c);
  Alcotest.(check bool) "covered query" true (C.is_covered c (9, 9))

let incomparability_invariant () =
  let rng = Parqo.Rng.create 5 in
  let c = C.create ~dominates:dom2 in
  for _ = 1 to 500 do
    ignore (C.add c (Parqo.Rng.int rng 100, Parqo.Rng.int rng 100))
  done;
  let elems = C.elements c in
  List.iter
    (fun a ->
      List.iter
        (fun b -> if a != b then Alcotest.(check bool) "incomparable" false (dom2 a b))
        elems)
    elems

let coverage_invariant () =
  (* every inserted point is covered by the final cover *)
  let rng = Parqo.Rng.create 6 in
  let points =
    List.init 300 (fun _ -> (Parqo.Rng.int rng 50, Parqo.Rng.int rng 50))
  in
  let cover = C.pareto ~dominates:dom2 points in
  List.iter
    (fun p ->
      Alcotest.(check bool) "covered" true
        (List.exists (fun c -> dom2 c p) cover))
    points

(* Theorem 3 claims E[cover size] of m independent random points in l
   dims is at most 2^l (1 - (1 - 2^-l)^m).  Reproduction finding: the
   claim cannot hold for the full minimal-element set at large m — for
   l = 2 the true expectation is the harmonic number H_m (≈ ln m), which
   exceeds 2^2 once m > ~55.  We verify both regimes: the bound holds for
   small m, and is measurably exceeded at (l=2, m=256), where the
   harmonic law takes over.  See EXPERIMENTS.md (E4). *)
let theorem3_monte_carlo () =
  let rng = Parqo.Rng.create 77 in
  let doml l a b =
    let rec go i = i >= l || (a.(i) <= b.(i) && go (i + 1)) in
    go 0
  in
  let mean_cover l m trials =
    let total = ref 0 in
    for _ = 1 to trials do
      let pts =
        List.init m (fun _ -> Array.init l (fun _ -> Parqo.Rng.float rng 1.))
      in
      total := !total + List.length (C.pareto ~dominates:(doml l) pts)
    done;
    float_of_int !total /. float_of_int trials
  in
  (* small-m regime: the bound holds (with Monte-Carlo slack) *)
  List.iter
    (fun (l, m) ->
      let mean = mean_cover l m 60 in
      let bound = Combin.theorem3_bound ~l ~m in
      Alcotest.(check bool)
        (Printf.sprintf "small-m l=%d m=%d: mean %.2f <= bound %.2f" l m mean bound)
        true
        (mean <= (bound *. 1.25) +. 0.5))
    [ (1, 16); (2, 8); (3, 16); (4, 32) ];
  (* large-m regime: the harmonic law exceeds the 2^l bound at l = 2 *)
  let mean = mean_cover 2 256 60 in
  let bound = Combin.theorem3_bound ~l:2 ~m:256 in
  Alcotest.(check bool)
    (Printf.sprintf "large-m: mean %.2f exceeds stated bound %.2f" mean bound)
    true (mean > bound);
  Alcotest.(check bool)
    (Printf.sprintf "large-m follows H_m: %.2f ~ %.2f" mean (Combin.harmonic 256))
    true
    (Float.abs (mean -. Combin.harmonic 256) < 1.0)

(* exact cross-check: for l = 2 the expected Pareto-set size is H_m *)
let two_dims_harmonic () =
  let rng = Parqo.Rng.create 99 in
  let m = 64 in
  let trials = 400 in
  let total = ref 0 in
  for _ = 1 to trials do
    let pts = List.init m (fun _ -> (Parqo.Rng.float rng 1., Parqo.Rng.float rng 1.)) in
    let dom (a1, a2) (b1, b2) = a1 <= b1 && a2 <= b2 in
    total := !total + List.length (C.pareto ~dominates:dom pts)
  done;
  let mean = float_of_int !total /. float_of_int trials in
  let expected = Combin.harmonic m in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f ~ H_%d = %.2f" mean m expected)
    true
    (Float.abs (mean -. expected) < 0.6)

(* constructed rank tie at the beam boundary: without a tie-break the
   survivor depends on insertion order; with one it never does *)
let trim_tie_break_deterministic () =
  let incomparable _ _ = false in
  let rank (_, r) = r in
  let tie (a, _) (b, _) = String.compare a b in
  let survivors order =
    let c = C.create ~dominates:incomparable in
    List.iter (fun x -> ignore (C.add c x)) order;
    C.trim ~tie c ~keep:2 ~rank;
    List.sort compare (C.elements c)
  in
  (* "a" and "b" tie at rank 1.0; only one fits beside "best" *)
  let o1 = survivors [ ("a", 1.0); ("b", 1.0); ("best", 0.5) ] in
  let o2 = survivors [ ("b", 1.0); ("a", 1.0); ("best", 0.5) ] in
  Alcotest.(check (list (pair string (float 0.))))
    "same survivors for both insertion orders" o1 o2;
  Alcotest.(check (list (pair string (float 0.))))
    "tie resolved toward the smaller key"
    [ ("a", 1.0); ("best", 0.5) ]
    o1

let total_order_keeps_one () =
  (* l = 1: a total order; the cover collapses to the single best *)
  let rng = Parqo.Rng.create 3 in
  let pts = List.init 200 (fun _ -> Parqo.Rng.int rng 1000) in
  let cover = C.pareto ~dominates:(fun a b -> a <= b) pts in
  Alcotest.(check int) "one survivor" 1 (List.length cover);
  Alcotest.(check int) "it is the min" (List.fold_left min max_int pts)
    (List.hd cover)

(* [size] is a maintained counter, not a list traversal: it must track
   [List.length (elements t)] through every add (with evictions) and trim *)
let size_matches_length () =
  let rng = Parqo.Rng.create 4 in
  let dominates (a, b) (c, d) = a <= c && b <= d in
  let t2 = C.create ~dominates in
  for i = 1 to 500 do
    let p = (Parqo.Rng.int rng 50, Parqo.Rng.int rng 50) in
    ignore (C.add t2 p);
    Alcotest.(check int)
      (Printf.sprintf "size after add %d" i)
      (List.length (C.elements t2))
      (C.size t2);
    if i mod 100 = 0 then begin
      C.trim t2 ~keep:5 ~rank:(fun (a, b) -> float_of_int (a + b));
      Alcotest.(check int)
        (Printf.sprintf "size after trim %d" i)
        (List.length (C.elements t2))
        (C.size t2)
    end
  done

(* ------------------------------------------------------------------ *)
(* Flat (struct-of-arrays) covers: the list implementation is the
   oracle.  Elements are (id, dims) pairs; dims are drawn from a small
   integer grid so exact dominance and exact rank ties actually occur. *)

let random_point rng ~id ~l ~range =
  (id, Array.init l (fun _ -> float_of_int (Parqo.Rng.int rng range)))

let list_dominates refines (ai, av) (bi, bv) =
  let rec go i = i >= Array.length av || (av.(i) <= bv.(i) && go (i + 1)) in
  go 0
  && match refines with None -> true | Some r -> r (ai, av) (bi, bv)

(* property: over random insertion sequences (with duplicates and exact
   ties), the flat cover accepts exactly the elements the list cover
   accepts and keeps them in the same (newest-first) order — with and
   without a [refines] dimension *)
let flat_matches_list_oracle () =
  let rng = Parqo.Rng.create 41 in
  List.iter
    (fun (l, range, refines) ->
      for _ = 1 to 20 do
        let list_cover =
          C.create ~dominates:(list_dominates refines)
        in
        let flat = C.Flat.create ~n_dims:l ?refines () in
        for id = 0 to 79 do
          let ((_, dims) as p) = random_point rng ~id ~l ~range in
          let expect = C.add list_cover p in
          Array.blit dims 0 (C.Flat.scratch flat) 0 l;
          Alcotest.(check bool)
            (Printf.sprintf "l=%d add %d accepted" l id)
            expect (C.Flat.add flat p);
          Alcotest.(check bool)
            (Printf.sprintf "l=%d covered query %d" l id)
            (C.is_covered list_cover p)
            (Array.blit dims 0 (C.Flat.scratch flat) 0 l;
             C.Flat.is_covered flat p)
        done;
        Alcotest.(check int) "size" (C.size list_cover) (C.Flat.size flat);
        Alcotest.(check (list int))
          (Printf.sprintf "l=%d same elements, same order" l)
          (List.map fst (C.elements list_cover))
          (List.map fst (C.Flat.elements flat))
      done)
    [
      (1, 6, None);
      (2, 8, None);
      (3, 4, None);
      (* refinement: dominance additionally requires the same id parity
         (a stand-in for ordering/partitioning compatibility) *)
      (2, 6, Some (fun (ai, _) (bi, _) -> (ai : int) mod 2 = bi mod 2));
    ]

(* property: both trims — list and flat — implement exactly the
   documented boundary semantics: stable sort of [elements] (newest
   first) by (rank, tie), then the [keep]-prefix, reported in ascending
   order.  Coarse integer ranks force plenty of boundary ties. *)
let trim_matches_sort_oracle () =
  let rng = Parqo.Rng.create 42 in
  let l = 2 in
  for round = 1 to 30 do
    let incomparable _ _ = false in
    let list_cover = C.create ~dominates:incomparable in
    (* a refines guard that always refuses makes the flat cover
       incomparable as well, so both sides keep every point and the
       trim has a full population to select from *)
    let flat = C.Flat.create ~n_dims:l ~refines:incomparable () in
    let n = 5 + Parqo.Rng.int rng 20 in
    for id = 0 to n - 1 do
      let ((_, dims) as p) = random_point rng ~id ~l ~range:3 in
      ignore (C.add list_cover p);
      Array.blit dims 0 (C.Flat.scratch flat) 0 l;
      ignore (C.Flat.add flat p)
    done;
    let rank (_, d) = d.(0) in
    (* id-based tie on half the rounds; pure rank ties on the rest *)
    let tie = if round mod 2 = 0 then Some (fun (a, _) (b, _) -> compare (a : int) b) else None in
    let keep = 1 + Parqo.Rng.int rng n in
    let oracle =
      (* trim is a no-op when the cover already fits within [keep] *)
      if keep >= n then C.elements list_cover
      else
        let cmp a b =
          match Float.compare (rank a) (rank b) with
          | 0 -> (match tie with None -> 0 | Some f -> f a b)
          | c -> c
        in
        let sorted = List.stable_sort cmp (C.elements list_cover) in
        List.filteri (fun i _ -> i < keep) sorted
    in
    C.trim ?tie list_cover ~keep ~rank;
    C.Flat.trim ?tie flat ~keep ~rank;
    Alcotest.(check (list int))
      (Printf.sprintf "round %d: list trim = stable-sort prefix" round)
      (List.map fst oracle)
      (List.map fst (C.elements list_cover));
    Alcotest.(check (list int))
      (Printf.sprintf "round %d: flat trim = stable-sort prefix" round)
      (List.map fst oracle)
      (List.map fst (C.Flat.elements flat))
  done

(* clear reuses the handle: after clear, behavior is as from create *)
let flat_clear_resets () =
  let rng = Parqo.Rng.create 43 in
  let flat = C.Flat.create ~n_dims:2 () in
  for _ = 1 to 3 do
    let list_cover = C.create ~dominates:(list_dominates None) in
    C.Flat.clear flat;
    for id = 0 to 49 do
      let ((_, dims) as p) = random_point rng ~id ~l:2 ~range:6 in
      ignore (C.add list_cover p);
      Array.blit dims 0 (C.Flat.scratch flat) 0 2;
      ignore (C.Flat.add flat p)
    done;
    Alcotest.(check (list int))
      "same cover after clear"
      (List.map fst (C.elements list_cover))
      (List.map fst (C.Flat.elements flat))
  done

let suite =
  ( "cover",
    [
      t "maintenance" maintenance;
      t "size matches length" size_matches_length;
      t "incomparability invariant" incomparability_invariant;
      t "coverage invariant" coverage_invariant;
      t "Theorem 3 Monte Carlo" theorem3_monte_carlo;
      t "2-dim harmonic cross-check" two_dims_harmonic;
      t "trim tie-break deterministic" trim_tie_break_deterministic;
      t "total order keeps one" total_order_keeps_one;
      t "flat cover matches list oracle" flat_matches_list_oracle;
      t "trim matches stable-sort oracle" trim_matches_sort_oracle;
      t "flat clear resets" flat_clear_resets;
    ] )
