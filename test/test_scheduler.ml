module Sim = Parqo.Simulator
module Sched = Parqo.Scheduler
module TG = Parqo.Task_graph
module Cm = Parqo.Costmodel

let t name f = Alcotest.test_case name `Quick f

(* hand-built graphs exercise policies in isolation *)
let graph ~n_resources stages =
  {
    TG.stages =
      Array.of_list
        (List.mapi
           (fun i (tasks, deps) ->
             {
               TG.stage_id = i;
               tasks =
                 List.mapi
                   (fun j demands ->
                     {
                       TG.task_id = (i * 100) + j;
                       label = Printf.sprintf "t%d_%d" i j;
                       demands;
                     })
                   tasks;
               deps;
               op_root = None;
             })
           stages);
    n_resources;
    root_stage = 0;
  }

let unit_job ?(arrival = 0.) ?(priority = 0) ~job_id () =
  Sched.job ~arrival ~priority ~job_id
    (graph ~n_resources:1 [ ([ [| 1. |] ], []) ])

let response o id =
  let j = Array.get o.Sched.jobs id in
  Alcotest.(check int) "job id position" id j.Sched.job_id;
  j.Sched.response

(* two identical unit jobs splitting one resource *)
let fair_share_splits () =
  let o =
    Sched.run ~policy:Sched.Fair_share
      [| unit_job ~job_id:0 (); unit_job ~job_id:1 () |]
  in
  Helpers.check_float "j0 response" 2. (response o 0);
  Helpers.check_float "j1 response" 2. (response o 1);
  Helpers.check_float "makespan" 2. o.Sched.makespan;
  Helpers.check_float "busy conserves" 2. o.Sched.busy.(0)

let srw_serializes () =
  let o =
    Sched.run ~policy:Sched.Shortest_remaining_work
      [| unit_job ~job_id:0 (); unit_job ~job_id:1 () |]
  in
  (* tie on remaining work: lowest id owns the resource *)
  Helpers.check_float "j0 first" 1. (response o 0);
  Helpers.check_float "j1 queued" 2. (response o 1);
  Helpers.check_float "busy conserves" 2. o.Sched.busy.(0)

let srw_prefers_short () =
  let long =
    Sched.job ~job_id:0 (graph ~n_resources:1 [ ([ [| 3. |] ], []) ])
  in
  let short = unit_job ~job_id:1 () in
  let o = Sched.run ~policy:Sched.Shortest_remaining_work [| long; short |] in
  Helpers.check_float "short first" 1. (response o 1);
  Helpers.check_float "long preempted" 4. (response o 0)

let priority_preempts () =
  let o =
    Sched.run ~policy:Sched.Strict_priority
      [| unit_job ~job_id:0 ~priority:0 (); unit_job ~job_id:1 ~priority:7 () |]
  in
  Helpers.check_float "high first" 1. (response o 1);
  Helpers.check_float "low waits" 2. (response o 0)

let idle_gap () =
  let o =
    Sched.run
      [| unit_job ~job_id:0 (); unit_job ~job_id:1 ~arrival:5. () |]
  in
  Helpers.check_float "j0 solo" 1. (response o 0);
  Helpers.check_float "j1 after gap" 1. (response o 1);
  Helpers.check_float "makespan spans gap" 6. o.Sched.makespan;
  Helpers.check_float "busy skips gap" 2. o.Sched.busy.(0);
  Helpers.check_float "utilization" (2. /. 6.) (Sched.utilization o)

let policy_names () =
  List.iter
    (fun p ->
      match Sched.policy_of_string (Sched.policy_to_string p) with
      | Ok p' -> Alcotest.(check bool) "round trip" true (p = p')
      | Error e -> Alcotest.fail e)
    Sched.all_policies;
  match Sched.policy_of_string "nope" with
  | Ok _ -> Alcotest.fail "accepted junk"
  | Error e ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "error lists names" true (contains e "fair")

let rejects_invalid () =
  let raises f =
    match f () with
    | (_ : Sched.outcome) -> false
    | exception Parqo.Parqo_error.Error _ -> true
  in
  Alcotest.(check bool) "empty set" true (raises (fun () -> Sched.run [||]));
  Alcotest.(check bool) "duplicate ids" true
    (raises (fun () ->
         Sched.run [| unit_job ~job_id:3 (); unit_job ~job_id:3 () |]));
  Alcotest.(check bool) "dimension mismatch" true
    (raises (fun () ->
         Sched.run
           [|
             unit_job ~job_id:0 ();
             Sched.job ~job_id:1 (graph ~n_resources:2 [ ([ [| 1.; 1. |] ], []) ]);
           |]));
  Alcotest.(check bool) "negative arrival" true
    (raises (fun () -> Sched.run [| unit_job ~arrival:(-1.) ~job_id:0 () |]))

let pressure_scales () =
  let jobs k = Array.init k (fun i -> unit_job ~job_id:i ()) in
  let p1 = Sched.expected_pressure ~n_resources:1 (jobs 1) in
  let p8 = Sched.expected_pressure ~n_resources:1 (jobs 8) in
  Alcotest.(check bool) "pressure grows with the active set" true
    (p8.(0) > p1.(0) *. 4.);
  let ph = Sched.expected_pressure ~horizon:2. ~n_resources:1 (jobs 8) in
  Helpers.check_float "explicit horizon divides" 4. ph.(0);
  Alcotest.(check bool) "horizon <= 0 rejected" true
    (match Sched.expected_pressure ~horizon:0. ~n_resources:1 (jobs 1) with
    | (_ : float array) -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* the fuzzer: random query mixes x arrival streams x all policies     *)

let random_graph rng =
  let n = 2 + Parqo.Rng.int rng 3 in
  let env = Helpers.random_env rng ~n in
  let tree = Helpers.random_tree rng env in
  let eval = Cm.evaluate env tree in
  TG.of_optree env eval.Cm.optree

let bits = Int64.bits_of_float
let bits_list l = List.map (fun (id, t) -> (id, bits t)) l

(* single-job co-scheduling must replay [Simulator.run] bit-for-bit
   under every policy *)
let degenerate_identity () =
  let rng = Parqo.Rng.create 20260811 in
  for case = 1 to 8 do
    let g = random_graph rng in
    let solo = Sim.run g in
    List.iter
      (fun policy ->
        let ctx what =
          Printf.sprintf "case %d %s: %s" case
            (Sched.policy_to_string policy) what
        in
        let o = Sched.run ~policy [| Sched.job ~job_id:0 g |] in
        Alcotest.(check int64) (ctx "makespan bits")
          (bits solo.Sim.makespan) (bits o.Sched.makespan);
        Alcotest.(check int64) (ctx "total work bits")
          (bits solo.Sim.total_work) (bits o.Sched.total_work);
        Alcotest.(check (array int64)) (ctx "busy bits")
          (Array.map bits solo.Sim.busy)
          (Array.map bits o.Sched.busy);
        let j = o.Sched.jobs.(0) in
        Alcotest.(check (list (pair int int64))) (ctx "stage starts")
          (bits_list solo.Sim.stage_start)
          (bits_list j.Sched.stage_start);
        Alcotest.(check (list (pair int int64))) (ctx "stage finishes")
          (bits_list solo.Sim.stage_finish)
          (bits_list j.Sched.stage_finish);
        Alcotest.(check int64) (ctx "response = solo makespan bits")
          (bits solo.Sim.makespan) (bits j.Sched.response))
      Sched.all_policies
  done

let check_workload ~ctx (jobs : Sched.job array) (o : Sched.outcome) =
  let nr = Array.length o.Sched.busy in
  Alcotest.(check int) (ctx "every job accounted for")
    (Array.length jobs) (Array.length o.Sched.jobs);
  Alcotest.(check bool) (ctx "utilization <= 1") true
    (Sched.utilization o <= 1. +. 1e-9);
  Array.iter
    (fun (j : Sched.job_outcome) ->
      Alcotest.(check bool) (ctx "responses finite nonnegative") true
        (Float.is_finite j.Sched.response && j.Sched.response >= -1e-9);
      Alcotest.(check bool) (ctx "finished after arrival") true
        (j.Sched.finished >= j.Sched.arrival -. 1e-9))
    o.Sched.jobs;
  (* busy conservation: every demanded unit of work — and nothing else —
     lands on its resource *)
  let offered = Array.make nr 0. in
  Array.iter
    (fun (j : Sched.job) ->
      Array.iter
        (fun (s : TG.stage) ->
          List.iter
            (fun (task : TG.task) ->
              Array.iteri
                (fun r d -> offered.(r) <- offered.(r) +. d)
                task.TG.demands)
            s.TG.tasks)
        j.Sched.graph.TG.stages)
    jobs;
  for r = 0 to nr - 1 do
    let tol = 1e-6 *. Float.max 1. offered.(r) in
    Alcotest.(check bool)
      (ctx (Printf.sprintf "busy conservation on r%d" r))
      true
      (Float.abs (o.Sched.busy.(r) -. offered.(r)) <= tol)
  done;
  let latest =
    Array.fold_left
      (fun acc (j : Sched.job_outcome) -> Float.max acc j.Sched.finished)
      0. o.Sched.jobs
  in
  Alcotest.(check bool) (ctx "makespan = last completion") true
    (Float.abs (o.Sched.makespan -. latest) <= 1e-9 *. Float.max 1. latest)

let fuzz () =
  let rng = Parqo.Rng.create 20260812 in
  let cases = ref 0 in
  for case = 1 to 10 do
    (* a mix of graphs from independent random queries *)
    let nj = 2 + Parqo.Rng.int rng 3 in
    let graphs = Array.init nj (fun _ -> random_graph rng) in
    let mean_span =
      Array.fold_left (fun acc g -> acc +. (Sim.run g).Sim.makespan) 0. graphs
      /. float_of_int nj
    in
    (* arrival timescale matched to the graphs' own makespans, from
       saturating (everything overlaps) to sparse *)
    let rate = (0.3 +. Parqo.Rng.float rng 4.) /. Float.max 1e-6 mean_span in
    let process =
      match Parqo.Rng.int rng 3 with
      | 0 -> Parqo.Workloads.Uniform rate
      | 1 -> Parqo.Workloads.Poisson rate
      | _ ->
        Parqo.Workloads.Burst
          { size = 1 + Parqo.Rng.int rng nj; period = 1. /. rate }
    in
    let arrivals = Parqo.Workloads.arrivals rng ~process ~n:nj in
    let jobs =
      Array.mapi
        (fun i g ->
          Sched.job ~arrival:arrivals.(i)
            ~priority:(Parqo.Rng.int rng 3) ~job_id:i g)
        graphs
    in
    List.iter
      (fun policy ->
        incr cases;
        let ctx what =
          Printf.sprintf "case %d %s: %s" case
            (Sched.policy_to_string policy) what
        in
        match Sched.run ~policy jobs with
        | o -> check_workload ~ctx jobs o
        | exception e ->
          Alcotest.failf "case %d %s: raised %s" case
            (Sched.policy_to_string policy) (Printexc.to_string e))
      Sched.all_policies
  done;
  Alcotest.(check bool) "at least 30 workloads" true (!cases >= 30)

let suite =
  ( "scheduler",
    [
      t "fair share splits the resource" fair_share_splits;
      t "srw serializes ties by id" srw_serializes;
      t "srw runs the short job first" srw_prefers_short;
      t "strict priority preempts" priority_preempts;
      t "idle gap between arrivals" idle_gap;
      t "policy names round trip" policy_names;
      t "invalid workloads rejected" rejects_invalid;
      t "expected pressure scales with load" pressure_scales;
      t "single job bit-identical to Simulator.run" degenerate_identity;
      t "fuzz mixes x arrivals x policies" fuzz;
    ] )
