module Sim = Parqo.Simulator
module Sched = Parqo.Scheduler
module TG = Parqo.Task_graph
module Cm = Parqo.Costmodel

let t name f = Alcotest.test_case name `Quick f

(* hand-built graphs exercise policies in isolation *)
let graph ~n_resources stages =
  {
    TG.stages =
      Array.of_list
        (List.mapi
           (fun i (tasks, deps) ->
             {
               TG.stage_id = i;
               tasks =
                 List.mapi
                   (fun j demands ->
                     {
                       TG.task_id = (i * 100) + j;
                       label = Printf.sprintf "t%d_%d" i j;
                       demands;
                     })
                   tasks;
               deps;
               op_root = None;
             })
           stages);
    n_resources;
    root_stage = 0;
  }

let unit_job ?(arrival = 0.) ?(priority = 0) ~job_id () =
  Sched.job ~arrival ~priority ~job_id
    (graph ~n_resources:1 [ ([ [| 1. |] ], []) ])

let response o id =
  let j = Array.get o.Sched.jobs id in
  Alcotest.(check int) "job id position" id j.Sched.job_id;
  j.Sched.response

(* two identical unit jobs splitting one resource *)
let fair_share_splits () =
  let o =
    Sched.run ~policy:Sched.Fair_share
      [| unit_job ~job_id:0 (); unit_job ~job_id:1 () |]
  in
  Helpers.check_float "j0 response" 2. (response o 0);
  Helpers.check_float "j1 response" 2. (response o 1);
  Helpers.check_float "makespan" 2. o.Sched.makespan;
  Helpers.check_float "busy conserves" 2. o.Sched.busy.(0)

let srw_serializes () =
  let o =
    Sched.run ~policy:Sched.Shortest_remaining_work
      [| unit_job ~job_id:0 (); unit_job ~job_id:1 () |]
  in
  (* tie on remaining work: lowest id owns the resource *)
  Helpers.check_float "j0 first" 1. (response o 0);
  Helpers.check_float "j1 queued" 2. (response o 1);
  Helpers.check_float "busy conserves" 2. o.Sched.busy.(0)

let srw_prefers_short () =
  let long =
    Sched.job ~job_id:0 (graph ~n_resources:1 [ ([ [| 3. |] ], []) ])
  in
  let short = unit_job ~job_id:1 () in
  let o = Sched.run ~policy:Sched.Shortest_remaining_work [| long; short |] in
  Helpers.check_float "short first" 1. (response o 1);
  Helpers.check_float "long preempted" 4. (response o 0)

let priority_preempts () =
  let o =
    Sched.run ~policy:Sched.Strict_priority
      [| unit_job ~job_id:0 ~priority:0 (); unit_job ~job_id:1 ~priority:7 () |]
  in
  Helpers.check_float "high first" 1. (response o 1);
  Helpers.check_float "low waits" 2. (response o 0)

let idle_gap () =
  let o =
    Sched.run
      [| unit_job ~job_id:0 (); unit_job ~job_id:1 ~arrival:5. () |]
  in
  Helpers.check_float "j0 solo" 1. (response o 0);
  Helpers.check_float "j1 after gap" 1. (response o 1);
  Helpers.check_float "makespan spans gap" 6. o.Sched.makespan;
  Helpers.check_float "busy skips gap" 2. o.Sched.busy.(0);
  Helpers.check_float "utilization" (2. /. 6.) (Sched.utilization o)

let policy_names () =
  List.iter
    (fun p ->
      match Sched.policy_of_string (Sched.policy_to_string p) with
      | Ok p' -> Alcotest.(check bool) "round trip" true (p = p')
      | Error e -> Alcotest.fail e)
    Sched.all_policies;
  match Sched.policy_of_string "nope" with
  | Ok _ -> Alcotest.fail "accepted junk"
  | Error e ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "error lists names" true (contains e "fair")

let rejects_invalid () =
  let raises f =
    match f () with
    | (_ : Sched.outcome) -> false
    | exception Parqo.Parqo_error.Error _ -> true
  in
  Alcotest.(check bool) "empty set" true (raises (fun () -> Sched.run [||]));
  Alcotest.(check bool) "duplicate ids" true
    (raises (fun () ->
         Sched.run [| unit_job ~job_id:3 (); unit_job ~job_id:3 () |]));
  Alcotest.(check bool) "dimension mismatch" true
    (raises (fun () ->
         Sched.run
           [|
             unit_job ~job_id:0 ();
             Sched.job ~job_id:1 (graph ~n_resources:2 [ ([ [| 1.; 1. |] ], []) ]);
           |]));
  Alcotest.(check bool) "negative arrival" true
    (raises (fun () -> Sched.run [| unit_job ~arrival:(-1.) ~job_id:0 () |]))

let pressure_scales () =
  let jobs k = Array.init k (fun i -> unit_job ~job_id:i ()) in
  let p1 = Sched.expected_pressure ~n_resources:1 (jobs 1) in
  let p8 = Sched.expected_pressure ~n_resources:1 (jobs 8) in
  Alcotest.(check bool) "pressure grows with the active set" true
    (p8.(0) > p1.(0) *. 4.);
  let ph = Sched.expected_pressure ~horizon:2. ~n_resources:1 (jobs 8) in
  Helpers.check_float "explicit horizon divides" 4. ph.(0);
  Alcotest.(check bool) "horizon <= 0 rejected" true
    (match Sched.expected_pressure ~horizon:0. ~n_resources:1 (jobs 1) with
    | (_ : float array) -> false
    | exception Invalid_argument _ -> true)

let random_graph rng =
  let n = 2 + Parqo.Rng.int rng 3 in
  let env = Helpers.random_env rng ~n in
  let tree = Helpers.random_tree rng env in
  let eval = Cm.evaluate env tree in
  TG.of_optree env eval.Cm.optree

let bits = Int64.bits_of_float
let bits_list l = List.map (fun (id, t) -> (id, bits t)) l

(* ------------------------------------------------------------------ *)
(* machine events: the machine changing under the workload             *)

let ev at r s = { Sched.ev_at = at; ev_resource = r; ev_speed = s }

let events_reshape_drain () =
  (* half speed from the start doubles the drain; busy records delivered
     work, so it still conserves the offered demand *)
  let o = Sched.run ~events:[ ev 0. 0 0.5 ] [| unit_job ~job_id:0 () |] in
  Helpers.check_float "half speed doubles the makespan" 2. o.Sched.makespan;
  Helpers.check_float "busy = delivered work" 1. o.Sched.busy.(0);
  (* a mid-run brownout: one unit at full speed, one at half *)
  let two = Sched.job ~job_id:0 (graph ~n_resources:1 [ ([ [| 2. |] ], []) ]) in
  let o = Sched.run ~events:[ ev 1. 0 0.5 ] [| two |] in
  Helpers.check_float "brownout splits the drain" 3. o.Sched.makespan;
  Helpers.check_float "busy conserves across the boundary" 2. o.Sched.busy.(0);
  (* a speed-up above nominal halves the drain *)
  let o = Sched.run ~events:[ ev 0. 0 2. ] [| unit_job ~job_id:0 () |] in
  Helpers.check_float "speed-up halves the makespan" 0.5 o.Sched.makespan;
  Helpers.check_float "busy still conserves" 1. o.Sched.busy.(0)

let outage_window_parks_demand () =
  (* speed 0 until t = 2, then restored: the unit job finishes at 3 *)
  let o =
    Sched.run
      ~events:[ ev 0. 0 0.; ev 2. 0 1. ]
      [| unit_job ~job_id:0 () |]
  in
  Helpers.check_float "parked until capacity returns" 3. o.Sched.makespan;
  Helpers.check_float "busy excludes the dead window" 1. o.Sched.busy.(0)

let starved_workload_raises () =
  match Sched.run ~events:[ ev 0. 0 0. ] [| unit_job ~job_id:0 () |] with
  | (_ : Sched.outcome) -> Alcotest.fail "expected a starvation error"
  | exception Parqo.Parqo_error.Error e ->
    Alcotest.(check string) "scheduler subsystem" "scheduler"
      e.Parqo.Parqo_error.subsystem

let invalid_events_rejected () =
  let bad e =
    match Sched.run ~events:[ e ] [| unit_job ~job_id:0 () |] with
    | (_ : Sched.outcome) -> false
    | exception Parqo.Parqo_error.Error _ -> true
  in
  Alcotest.(check bool) "negative instant" true (bad (ev (-1.) 0 1.));
  Alcotest.(check bool) "resource out of range" true (bad (ev 0. 5 1.));
  Alcotest.(check bool) "negative speed" true (bad (ev 0. 0 (-0.5)));
  Alcotest.(check bool) "non-finite speed" true (bad (ev 0. 0 Float.nan))

(* no-op (speed-preserving) events reduce to no events at all: the run
   is Int64-bit-identical even though the instants would otherwise split
   drain segments *)
let nominal_events_bit_identity () =
  let rng = Parqo.Rng.create 20260813 in
  for case = 1 to 5 do
    let g = random_graph rng in
    let nr = g.TG.n_resources in
    let events =
      List.init 6 (fun i -> ev (0.37 *. float_of_int i) (i mod nr) 1.0)
    in
    List.iter
      (fun policy ->
        let ctx what =
          Printf.sprintf "case %d %s: %s" case
            (Sched.policy_to_string policy) what
        in
        let base = Sched.run ~policy [| Sched.job ~job_id:0 g |] in
        let o = Sched.run ~policy ~events [| Sched.job ~job_id:0 g |] in
        Alcotest.(check int64) (ctx "makespan bits")
          (bits base.Sched.makespan) (bits o.Sched.makespan);
        Alcotest.(check int64) (ctx "total work bits")
          (bits base.Sched.total_work) (bits o.Sched.total_work);
        Alcotest.(check (array int64)) (ctx "busy bits")
          (Array.map bits base.Sched.busy)
          (Array.map bits o.Sched.busy))
      Sched.all_policies
  done

(* ------------------------------------------------------------------ *)
(* admission control: deadlines shed jobs the machine cannot serve     *)

let deadline_sheds () =
  let o =
    Sched.run
      [|
        unit_job ~job_id:0 ();
        Sched.job ~job_id:1 ~deadline:0.5
          (graph ~n_resources:1 [ ([ [| 1. |] ], []) ]);
      |]
  in
  let j1 = o.Sched.jobs.(1) in
  (match j1.Sched.disposition with
  | Sched.Rejected reason ->
    Alcotest.(check bool) "reason mentions the deadline" true
      (String.length reason > 0)
  | Sched.Completed -> Alcotest.fail "expected the tight job to be shed");
  Helpers.check_float "rejected response is zero" 0. j1.Sched.response;
  Helpers.check_float "shed job leaves the machine alone" 1. (response o 0);
  Helpers.check_float "makespan from the surviving job" 1. o.Sched.makespan;
  Helpers.check_float "total work excludes shed jobs" 1. o.Sched.total_work;
  Helpers.check_float "busy conservation excludes shed jobs" 1.
    o.Sched.busy.(0);
  let s = Sched.summarize o in
  Alcotest.(check int) "summary counts the shed job" 1 s.Sched.n_rejected;
  Helpers.check_float "quantiles over completed jobs only" 1. s.Sched.p95;
  (* a generous budget admits the same workload *)
  let o2 =
    Sched.run
      [|
        unit_job ~job_id:0 ();
        Sched.job ~job_id:1 ~deadline:10.
          (graph ~n_resources:1 [ ([ [| 1. |] ], []) ]);
      |]
  in
  Alcotest.(check int) "generous budget admits" 0
    (Sched.summarize o2).Sched.n_rejected;
  (* degraded capacity tightens admission: at half speed the same
     deadline that admitted solo now sheds *)
  let solo d events =
    (Sched.run ~events
       [| Sched.job ~job_id:0 ~deadline:d
            (graph ~n_resources:1 [ ([ [| 1. |] ], []) ]) |])
      .Sched.jobs.(0)
      .Sched.disposition
  in
  Alcotest.(check bool) "nominal speed admits" true
    (solo 1.5 [] = Sched.Completed);
  Alcotest.(check bool) "half speed sheds the same budget" true
    (match solo 1.5 [ ev 0. 0 0.5 ] with
    | Sched.Rejected _ -> true
    | Sched.Completed -> false);
  (* invalid deadlines are rejected up front *)
  match
    Sched.run
      [| Sched.job ~job_id:0 ~deadline:0.
           (graph ~n_resources:1 [ ([ [| 1. |] ], []) ]) |]
  with
  | (_ : Sched.outcome) -> Alcotest.fail "deadline 0 accepted"
  | exception Parqo.Parqo_error.Error _ -> ()

let pressure_with_speeds () =
  let jobs = [| unit_job ~job_id:0 () |] in
  let base = Sched.expected_pressure ~horizon:1. ~n_resources:1 jobs in
  let nominal =
    Sched.expected_pressure ~horizon:1. ~speeds:[| 1. |] ~n_resources:1 jobs
  in
  Alcotest.(check int64) "nominal speeds bit-identical" (bits base.(0))
    (bits nominal.(0));
  let half =
    Sched.expected_pressure ~horizon:1. ~speeds:[| 0.5 |] ~n_resources:1 jobs
  in
  Helpers.check_float "half speed doubles the pressure" (2. *. base.(0))
    half.(0);
  let dead =
    Sched.expected_pressure ~horizon:1. ~speeds:[| 0. |] ~n_resources:1 jobs
  in
  Alcotest.(check bool) "offered work on a dead resource reads infinite"
    true
    (dead.(0) = Float.infinity);
  (* a dead resource with nothing offered reads zero, not infinity *)
  let wide =
    [| Sched.job ~job_id:0 (graph ~n_resources:2 [ ([ [| 1.; 0. |] ], []) ]) |]
  in
  let p =
    Sched.expected_pressure ~horizon:1. ~speeds:[| 1.; 0. |] ~n_resources:2
      wide
  in
  Helpers.check_float "idle dead resource reads zero" 0. p.(1);
  (* mis-sized speeds rejected *)
  Alcotest.(check bool) "mis-sized speeds rejected" true
    (match
       Sched.expected_pressure ~speeds:[| 1.; 1. |] ~n_resources:1 jobs
     with
    | (_ : float array) -> false
    | exception Invalid_argument _ -> true);
  (* effective_speeds mirrors the machine's current speeds *)
  let m = Parqo.Machine.shared_nothing ~nodes:2 () in
  let hm = Parqo.Machine.rescale m ~speeds:[ (0, 0.5) ] in
  let sp = Sched.effective_speeds hm in
  Alcotest.(check int) "one entry per resource"
    (Parqo.Machine.n_resources hm)
    (Array.length sp);
  Helpers.check_float "rescaled entry" 0.5 sp.(0);
  Helpers.check_float "nominal entry" 1. sp.(1)

(* ------------------------------------------------------------------ *)
(* the fuzzer: random query mixes x arrival streams x all policies     *)

(* single-job co-scheduling must replay [Simulator.run] bit-for-bit
   under every policy *)
let degenerate_identity () =
  let rng = Parqo.Rng.create 20260811 in
  for case = 1 to 8 do
    let g = random_graph rng in
    let solo = Sim.run g in
    List.iter
      (fun policy ->
        let ctx what =
          Printf.sprintf "case %d %s: %s" case
            (Sched.policy_to_string policy) what
        in
        let o = Sched.run ~policy [| Sched.job ~job_id:0 g |] in
        Alcotest.(check int64) (ctx "makespan bits")
          (bits solo.Sim.makespan) (bits o.Sched.makespan);
        Alcotest.(check int64) (ctx "total work bits")
          (bits solo.Sim.total_work) (bits o.Sched.total_work);
        Alcotest.(check (array int64)) (ctx "busy bits")
          (Array.map bits solo.Sim.busy)
          (Array.map bits o.Sched.busy);
        let j = o.Sched.jobs.(0) in
        Alcotest.(check (list (pair int int64))) (ctx "stage starts")
          (bits_list solo.Sim.stage_start)
          (bits_list j.Sched.stage_start);
        Alcotest.(check (list (pair int int64))) (ctx "stage finishes")
          (bits_list solo.Sim.stage_finish)
          (bits_list j.Sched.stage_finish);
        Alcotest.(check int64) (ctx "response = solo makespan bits")
          (bits solo.Sim.makespan) (bits j.Sched.response))
      Sched.all_policies
  done

let check_workload ~ctx (jobs : Sched.job array) (o : Sched.outcome) =
  let nr = Array.length o.Sched.busy in
  Alcotest.(check int) (ctx "every job accounted for")
    (Array.length jobs) (Array.length o.Sched.jobs);
  Alcotest.(check bool) (ctx "utilization <= 1") true
    (Sched.utilization o <= 1. +. 1e-9);
  Array.iter
    (fun (j : Sched.job_outcome) ->
      Alcotest.(check bool) (ctx "responses finite nonnegative") true
        (Float.is_finite j.Sched.response && j.Sched.response >= -1e-9);
      Alcotest.(check bool) (ctx "finished after arrival") true
        (j.Sched.finished >= j.Sched.arrival -. 1e-9))
    o.Sched.jobs;
  (* busy conservation: every demanded unit of work — and nothing else —
     lands on its resource *)
  let offered = Array.make nr 0. in
  Array.iter
    (fun (j : Sched.job) ->
      Array.iter
        (fun (s : TG.stage) ->
          List.iter
            (fun (task : TG.task) ->
              Array.iteri
                (fun r d -> offered.(r) <- offered.(r) +. d)
                task.TG.demands)
            s.TG.tasks)
        j.Sched.graph.TG.stages)
    jobs;
  for r = 0 to nr - 1 do
    let tol = 1e-6 *. Float.max 1. offered.(r) in
    Alcotest.(check bool)
      (ctx (Printf.sprintf "busy conservation on r%d" r))
      true
      (Float.abs (o.Sched.busy.(r) -. offered.(r)) <= tol)
  done;
  let latest =
    Array.fold_left
      (fun acc (j : Sched.job_outcome) -> Float.max acc j.Sched.finished)
      0. o.Sched.jobs
  in
  Alcotest.(check bool) (ctx "makespan = last completion") true
    (Float.abs (o.Sched.makespan -. latest) <= 1e-9 *. Float.max 1. latest)

let fuzz () =
  let rng = Parqo.Rng.create 20260812 in
  let cases = ref 0 in
  for case = 1 to 10 do
    (* a mix of graphs from independent random queries *)
    let nj = 2 + Parqo.Rng.int rng 3 in
    let graphs = Array.init nj (fun _ -> random_graph rng) in
    let mean_span =
      Array.fold_left (fun acc g -> acc +. (Sim.run g).Sim.makespan) 0. graphs
      /. float_of_int nj
    in
    (* arrival timescale matched to the graphs' own makespans, from
       saturating (everything overlaps) to sparse *)
    let rate = (0.3 +. Parqo.Rng.float rng 4.) /. Float.max 1e-6 mean_span in
    let process =
      match Parqo.Rng.int rng 3 with
      | 0 -> Parqo.Workloads.Uniform rate
      | 1 -> Parqo.Workloads.Poisson rate
      | _ ->
        Parqo.Workloads.Burst
          { size = 1 + Parqo.Rng.int rng nj; period = 1. /. rate }
    in
    let arrivals = Parqo.Workloads.arrivals rng ~process ~n:nj in
    let jobs =
      Array.mapi
        (fun i g ->
          Sched.job ~arrival:arrivals.(i)
            ~priority:(Parqo.Rng.int rng 3) ~job_id:i g)
        graphs
    in
    List.iter
      (fun policy ->
        incr cases;
        let ctx what =
          Printf.sprintf "case %d %s: %s" case
            (Sched.policy_to_string policy) what
        in
        match Sched.run ~policy jobs with
        | o -> check_workload ~ctx jobs o
        | exception e ->
          Alcotest.failf "case %d %s: raised %s" case
            (Sched.policy_to_string policy) (Printexc.to_string e))
      Sched.all_policies
  done;
  Alcotest.(check bool) "at least 30 workloads" true (!cases >= 30)

let suite =
  ( "scheduler",
    [
      t "fair share splits the resource" fair_share_splits;
      t "srw serializes ties by id" srw_serializes;
      t "srw runs the short job first" srw_prefers_short;
      t "strict priority preempts" priority_preempts;
      t "idle gap between arrivals" idle_gap;
      t "policy names round trip" policy_names;
      t "invalid workloads rejected" rejects_invalid;
      t "expected pressure scales with load" pressure_scales;
      t "machine events reshape the drain" events_reshape_drain;
      t "outage window parks demand" outage_window_parks_demand;
      t "starved workload raises" starved_workload_raises;
      t "invalid events rejected" invalid_events_rejected;
      t "nominal events bit-identical" nominal_events_bit_identity;
      t "deadline admission sheds" deadline_sheds;
      t "pressure under speeds" pressure_with_speeds;
      t "single job bit-identical to Simulator.run" degenerate_identity;
      t "fuzz mixes x arrivals x policies" fuzz;
    ] )
