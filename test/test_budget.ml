module B = Parqo.Budget
module Cm = Parqo.Costmodel

let t name f = Alcotest.test_case name `Quick f

let env_for n =
  let catalog, query =
    Parqo.Query_gen.generate (Parqo.Query_gen.default_spec Parqo.Query_gen.Chain n)
  in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  Parqo.Env.create ~machine ~catalog ~query ()

(* the accounting primitives *)
let tracker_accounting () =
  Alcotest.(check bool) "unlimited" true (B.is_unlimited B.unlimited);
  Alcotest.(check bool) "capped" false (B.is_unlimited (B.expansions 5));
  let tr = B.start (B.expansions 5) in
  Alcotest.(check bool) "fresh not exhausted" false (B.exhausted tr);
  B.tick tr 3;
  Alcotest.(check int) "spent" 3 (B.spent tr);
  Alcotest.(check bool) "under cap" false (B.exhausted tr);
  B.tick tr 2;
  Alcotest.(check bool) "at cap" true (B.exhausted tr);
  let unl = B.start B.unlimited in
  B.tick unl 1_000_000;
  Alcotest.(check bool) "unlimited never exhausts" false (B.exhausted unl);
  (* an elapsed time cap exhausts immediately *)
  let timed = B.start (B.seconds 0.) in
  Alcotest.(check bool) "zero-second cap" true (B.exhausted timed)

(* absolute deadlines: the serving layer's way in.  Unlike max_seconds a
   deadline is independent of when the tracker starts *)
let deadline_budget () =
  let now = Unix.gettimeofday () in
  let future = B.start (B.deadline (now +. 60.)) in
  Alcotest.(check bool) "future deadline not exhausted" false
    (B.exhausted future);
  let past = B.start (B.deadline (now -. 1.)) in
  Alcotest.(check bool) "past deadline exhausted at start" true
    (B.exhausted past);
  Alcotest.(check bool) "deadline is not unlimited" false
    (B.is_unlimited (B.deadline (now +. 60.)));
  (* [until] composes a deadline onto a standing cap, keeping the cap *)
  let composed = B.until (now -. 1.) (B.expansions 5) in
  Alcotest.(check (option int)) "until keeps the expansion cap" (Some 5)
    composed.B.max_expansions;
  Alcotest.(check bool) "composed deadline exhausts" true
    (B.exhausted (B.start composed));
  let replaced = B.until (now +. 60.) (B.deadline (now -. 1.)) in
  Alcotest.(check bool) "until replaces an earlier deadline" false
    (B.exhausted (B.start replaced))

let remaining_seconds () =
  let now = Unix.gettimeofday () in
  Alcotest.(check (option int)) "no time component" None
    (Option.map int_of_float
       (B.remaining_seconds (B.start (B.expansions 5))));
  (match B.remaining_seconds (B.start (B.deadline (now +. 60.))) with
  | Some r -> Alcotest.(check bool) "about a minute left" true (r > 50. && r <= 60.)
  | None -> Alcotest.fail "deadline has a time component");
  match B.remaining_seconds (B.start (B.deadline (now -. 5.))) with
  | Some r -> Alcotest.(check bool) "clamped at zero" true (r = 0.)
  | None -> Alcotest.fail "past deadline has a time component"

(* the time cap measures wall clock, not process CPU time: sleeping burns
   the budget even though Sys.time barely advances (the pre-fix tracker
   would not exhaust here, and under k domains it charged time k× over) *)
let time_cap_is_wall_clock () =
  let tr = B.start (B.seconds 0.05) in
  Alcotest.(check bool) "fresh" false (B.exhausted tr);
  Unix.sleepf 0.08;
  Alcotest.(check bool) "sleep counts" true (B.exhausted tr);
  Alcotest.(check bool) "elapsed >= slept" true (B.elapsed tr >= 0.05)

(* concurrent ticks from worker domains must not lose updates *)
let ticks_are_atomic () =
  let tr = B.start B.unlimited in
  let per_domain = 25_000 and n_domains = 4 in
  let worker () = for _ = 1 to per_domain do B.tick tr 1 done in
  let ds = Array.init n_domains (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join ds;
  Alcotest.(check int) "no lost ticks" (per_domain * n_domains) (B.spent tr)

(* Podp reports when it could not finish *)
let podp_reports_gave_up () =
  let env = env_for 5 in
  let metric = Parqo.Optimizer.default_metric env in
  let full = Parqo.Podp.optimize ~metric env in
  Alcotest.(check bool) "unbudgeted completes" false full.Parqo.Podp.gave_up;
  let starved = Parqo.Podp.optimize ~metric ~budget:(B.expansions 1) env in
  Alcotest.(check bool) "starved gives up" true starved.Parqo.Podp.gave_up

(* the optimizer always returns a valid plan, even on a hopeless budget *)
let tiny_budget_still_plans () =
  let env = env_for 5 in
  let o =
    Parqo.Optimizer.minimize_response_time ~budget:(B.expansions 1) env
  in
  Alcotest.(check bool) "gave up" true o.Parqo.Optimizer.gave_up;
  match o.Parqo.Optimizer.best with
  | None -> Alcotest.fail "budgeted optimizer returned no plan"
  | Some b ->
    Alcotest.(check bool) "positive response time" true
      (b.Cm.response_time > 0.);
    Alcotest.(check bool) "positive work" true (b.Cm.work > 0.)

(* a generous budget changes nothing *)
let generous_budget_is_exact () =
  let env = env_for 4 in
  let free = Parqo.Optimizer.minimize_response_time env in
  let capped =
    Parqo.Optimizer.minimize_response_time ~budget:(B.expansions 1_000_000) env
  in
  Alcotest.(check bool) "did not give up" false capped.Parqo.Optimizer.gave_up;
  match (free.Parqo.Optimizer.best, capped.Parqo.Optimizer.best) with
  | Some a, Some b ->
    Helpers.check_float "same response time" a.Cm.response_time b.Cm.response_time;
    Alcotest.(check string) "same plan"
      (Parqo.Join_tree.to_string a.Cm.tree)
      (Parqo.Join_tree.to_string b.Cm.tree)
  | _ -> Alcotest.fail "optimizer returned no plan"

(* the degraded result is never worse than the greedy fallback itself —
   that is the guarantee the fallback provides (it may well BEAT the
   unbudgeted partial-order search, whose metric pruning is not
   rank-monotone) *)
let budgeted_never_worse_than_greedy () =
  let env = env_for 5 in
  let greedy =
    match
      (Parqo.Greedy.greedy ~objective:(fun (e : Cm.eval) -> e.Cm.response_time)
         env)
        .Parqo.Greedy.best
    with
    | Some g -> g
    | None -> Alcotest.fail "greedy returned no plan"
  in
  List.iter
    (fun n ->
      let capped =
        Parqo.Optimizer.minimize_response_time ~budget:(B.expansions n) env
      in
      match capped.Parqo.Optimizer.best with
      | Some b ->
        Alcotest.(check bool)
          (Printf.sprintf "budget %d: no worse than greedy" n)
          true
          (b.Cm.response_time <= greedy.Cm.response_time +. 1e-9)
      | None -> Alcotest.fail "optimizer returned no plan")
    [ 1; 10; 100 ]

let suite =
  ( "search budget",
    [
      t "tracker accounting" tracker_accounting;
      t "deadline budgets" deadline_budget;
      t "remaining seconds" remaining_seconds;
      t "time cap is wall clock" time_cap_is_wall_clock;
      t "ticks are atomic" ticks_are_atomic;
      t "podp reports gave-up" podp_reports_gave_up;
      t "tiny budget still plans" tiny_budget_still_plans;
      t "generous budget is exact" generous_budget_is_exact;
      t "budgeted never worse than greedy" budgeted_never_worse_than_greedy;
    ] )
