module P = Parqo.Opcost
module Pl = Parqo.Placement
module M = Parqo.Machine

let t name f = Alcotest.test_case name `Quick f

let cpus_for () =
  let m = M.shared_nothing ~nodes:4 () in
  Alcotest.(check int) "one cpu" 1 (List.length (Pl.cpus_for m ~clone:1));
  Alcotest.(check int) "clamped at machine size" 4
    (List.length (Pl.cpus_for m ~clone:16));
  (* deterministic: lowest ids first *)
  Alcotest.(check (list int)) "stable choice" (Pl.cpus_for m ~clone:2)
    (Pl.cpus_for m ~clone:2);
  let two = M.two_disks () in
  Alcotest.(check int) "no cpus on example-3 machine" 0
    (List.length (Pl.cpus_for two ~clone:4))

let effective_clone () =
  let m = M.shared_nothing ~nodes:4 () in
  Alcotest.(check int) "within capacity" 3 (Pl.effective_clone m 3);
  Alcotest.(check int) "clamped" 4 (Pl.effective_clone m 9);
  let two = M.two_disks () in
  Alcotest.(check int) "no cpus -> 1" 1 (Pl.effective_clone two 8)

let table_and_index_disks () =
  let m = M.shared_nothing ~nodes:4 () in
  let col = Parqo.Stats.column ~distinct:10. ~min_v:0. ~max_v:9. () in
  let table d =
    Parqo.Table.create ~name:"t" ~columns:[ ("c", col) ] ~cardinality:10.
      ~disks:d ()
  in
  Alcotest.(check int) "single placement" 1
    (List.length (Pl.disks_for_table m (table [ 2 ])));
  Alcotest.(check int) "partitioned placement" 3
    (List.length (Pl.disks_for_table m (table [ 0; 1; 2 ])));
  (* abstract disk indexes wrap around machine disks *)
  Alcotest.(check int) "modulo wrap" 1
    (List.length (Pl.disks_for_table m (table [ 5 ])));
  let idx = Parqo.Index.create ~name:"i" ~table:"t" ~columns:[ "c" ] ~disk:1 () in
  (match Pl.disk_for_index m idx with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a disk");
  (* spill disks are cpu-local on shared-nothing *)
  let cpus = Pl.cpus_for m ~clone:2 in
  Alcotest.(check int) "one spill disk per cpu" 2
    (List.length (Pl.spill_disks m ~cpus))

(* heterogeneous speeds: fastest CPUs first, ids break ties *)
let hetero_cpu_order () =
  let m = M.shared_nothing ~nodes:4 () in
  let cpus = M.cpu_ids m in
  Alcotest.(check (list int)) "homogeneous order = id order" cpus
    (Pl.cpu_order m);
  let c = Array.of_list cpus in
  let hm =
    M.rescale m
      ~speeds:[ (c.(0), 1.0); (c.(1), 2.0); (c.(2), 0.5); (c.(3), 1.0) ]
  in
  Alcotest.(check (list int)) "descending speed, ascending id on ties"
    [ c.(1); c.(0); c.(3); c.(2) ]
    (Pl.cpu_order hm);
  (* a clone lands on the fastest k *)
  Alcotest.(check (list int)) "clone 2 takes the two fastest"
    [ c.(1); c.(0) ]
    (Pl.cpus_for hm ~clone:2);
  (* a degraded cpu disappears entirely *)
  let down = M.degrade hm ~down:[ c.(1) ] in
  Alcotest.(check bool) "down cpu never placed" false
    (List.mem c.(1) (Pl.cpus_for down ~clone:4));
  (* a fast grown cpu jumps the queue *)
  let grown = M.grow ~speed:3. m [ (Parqo.Resource.Cpu, "cpu-x", 0) ] in
  Alcotest.(check int) "grown cpu leads the order"
    (M.n_resources m)
    (List.hd (Pl.cpu_order grown))

let suite =
  ( "placement",
    [
      t "cpus_for" cpus_for;
      t "effective clone" effective_clone;
      t "table and index disks" table_and_index_disks;
      t "heterogeneous cpu order" hetero_cpu_order;
    ] )
