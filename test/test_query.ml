module Q = Parqo.Query
module B = Parqo.Bitset

let t name f = Alcotest.test_case name `Quick f

(* a chain query t0 - t1 - t2 plus an extra edge t0 - t2 *)
let sample () =
  Q.create
    ~relations:[ ("a", "t0"); ("b", "t1"); ("c", "t2") ]
    ~joins:
      [
        { Q.left = { Q.rel = 0; column = "x" }; right = { Q.rel = 1; column = "x" } };
        { Q.left = { Q.rel = 1; column = "y" }; right = { Q.rel = 2; column = "y" } };
        { Q.left = { Q.rel = 0; column = "z" }; right = { Q.rel = 2; column = "z" } };
      ]
    ~selections:
      [ { Q.on = { Q.rel = 0; column = "x" }; cmp = Q.Lt; value = Parqo.Value.Int 5 } ]
    ()

let lookups () =
  let q = sample () in
  Alcotest.(check int) "n_relations" 3 (Q.n_relations q);
  Alcotest.(check string) "alias" "b" (Q.alias q 1);
  Alcotest.(check string) "table" "t1" (Q.table_name q 1);
  Alcotest.(check int) "relation_id" 2 (Q.relation_id q "c");
  Alcotest.check_raises "unknown alias" Not_found (fun () ->
      ignore (Q.relation_id q "zz"))

let join_topology () =
  let q = sample () in
  Alcotest.(check int) "joins between {a} {b}" 1
    (List.length (Q.joins_between q (B.singleton 0) (B.singleton 1)));
  Alcotest.(check int) "joins between {a} {b,c}" 2
    (List.length (Q.joins_between q (B.singleton 0) (B.of_list [ 1; 2 ])));
  Alcotest.(check int) "joins within all" 3
    (List.length (Q.joins_within q (B.full 3)));
  Alcotest.(check int) "joins within pair" 1
    (List.length (Q.joins_within q (B.of_list [ 0; 1 ])));
  Alcotest.(check (list int)) "neighbors of b" [ 0; 2 ]
    (B.to_list (Q.neighbors q 1));
  Alcotest.(check int) "selections on a" 1 (List.length (Q.selections_on q 0));
  Alcotest.(check int) "selections on b" 0 (List.length (Q.selections_on q 1))

let connectivity () =
  let q =
    Q.create
      ~relations:[ ("a", "t0"); ("b", "t1"); ("c", "t2") ]
      ~joins:
        [ { Q.left = { Q.rel = 0; column = "x" }; right = { Q.rel = 1; column = "x" } } ]
      ()
  in
  Alcotest.(check bool) "pair connected" true (Q.connected q (B.of_list [ 0; 1 ]));
  Alcotest.(check bool) "full disconnected" false (Q.connected q (B.full 3));
  Alcotest.(check bool) "singleton connected" true (Q.connected q (B.singleton 2));
  Alcotest.(check bool) "isolated pair" false (Q.connected q (B.of_list [ 1; 2 ]))

let create_errors () =
  Alcotest.check_raises "duplicate alias"
    (Invalid_argument "Query.create: duplicate alias") (fun () ->
      ignore (Q.create ~relations:[ ("a", "t0"); ("a", "t1") ] ~joins:[] ()));
  Alcotest.check_raises "self join pred"
    (Invalid_argument "Query.create: join predicate within one relation")
    (fun () ->
      ignore
        (Q.create
           ~relations:[ ("a", "t0") ]
           ~joins:
             [
               {
                 Q.left = { Q.rel = 0; column = "x" };
                 right = { Q.rel = 0; column = "y" };
               };
             ]
           ()))

let sql_rendering () =
  let q = sample () in
  let sql = Q.to_sql q in
  Alcotest.(check bool) "mentions WHERE" true
    (let rec has i =
       i + 5 <= String.length sql && (String.sub sql i 5 = "WHERE" || has (i + 1))
     in
     has 0);
  Alcotest.(check bool) "starts with SELECT" true
    (String.sub sql 0 6 = "SELECT")

let validate_against_catalog () =
  let catalog, query =
    Parqo.Query_gen.generate (Parqo.Query_gen.default_spec Parqo.Query_gen.Chain 3)
  in
  (match Q.validate catalog query with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let bad = Q.create ~relations:[ ("x", "missing") ] ~joins:[] () in
  match Q.validate catalog bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected validation error"

let order_by_field () =
  let q =
    Q.create
      ~relations:[ ("a", "t0"); ("b", "t1") ]
      ~joins:
        [ { Q.left = { Q.rel = 0; column = "x" }; right = { Q.rel = 1; column = "x" } } ]
      ~order_by:[ { Q.rel = 1; column = "y" } ]
      ()
  in
  Alcotest.(check int) "order by kept" 1 (List.length q.Q.order_by);
  let sql = Q.to_sql q in
  Alcotest.(check bool) "rendered" true
    (let needle = "ORDER BY b.y" in
     let n = String.length needle and h = String.length sql in
     let rec scan i = i + n <= h && (String.sub sql i n = needle || scan (i + 1)) in
     scan 0);
  (* out-of-range order-by relation rejected *)
  Alcotest.(check bool) "bad ref rejected" true
    (try
       ignore
         (Q.create ~relations:[ ("a", "t0") ] ~joins:[]
            ~order_by:[ { Q.rel = 3; column = "y" } ]
            ());
       false
     with Invalid_argument _ -> true)

(* whole-query fingerprints: the serving plan cache's key.  Two queries
   share one iff they denote the same optimization problem — aliases and
   conjunct order are noise, relation order and projection order are
   load-bearing *)
let fingerprints () =
  let j a ca b cb =
    { Q.left = { Q.rel = a; column = ca }; right = { Q.rel = b; column = cb } }
  in
  let base =
    Q.create
      ~relations:[ ("a", "t0"); ("b", "t1"); ("c", "t2") ]
      ~joins:[ j 0 "x" 1 "x"; j 1 "y" 2 "y" ]
      ~selections:[ { Q.on = { Q.rel = 0; column = "v" }; cmp = Q.Le;
                      value = Parqo.Value.Int 5 } ]
      ()
  in
  let fp = Q.fingerprint base in
  (* aliases are display-only *)
  let renamed =
    Q.create
      ~relations:[ ("x1", "t0"); ("x2", "t1"); ("x3", "t2") ]
      ~joins:[ j 0 "x" 1 "x"; j 1 "y" 2 "y" ]
      ~selections:[ { Q.on = { Q.rel = 0; column = "v" }; cmp = Q.Le;
                      value = Parqo.Value.Int 5 } ]
      ()
  in
  Alcotest.(check string) "alias-insensitive" fp (Q.fingerprint renamed);
  (* conjunct order and predicate side are normalized away *)
  let shuffled =
    Q.create
      ~relations:[ ("a", "t0"); ("b", "t1"); ("c", "t2") ]
      ~joins:[ j 2 "y" 1 "y"; j 1 "x" 0 "x" ]
      ~selections:[ { Q.on = { Q.rel = 0; column = "v" }; cmp = Q.Le;
                      value = Parqo.Value.Int 5 } ]
      ()
  in
  Alcotest.(check string) "join-order- and side-insensitive" fp
    (Q.fingerprint shuffled);
  (* different selection constant: different problem *)
  let tighter =
    Q.create
      ~relations:[ ("a", "t0"); ("b", "t1"); ("c", "t2") ]
      ~joins:[ j 0 "x" 1 "x"; j 1 "y" 2 "y" ]
      ~selections:[ { Q.on = { Q.rel = 0; column = "v" }; cmp = Q.Le;
                      value = Parqo.Value.Int 4 } ]
      ()
  in
  Alcotest.(check bool) "selection constant matters" false
    (String.equal fp (Q.fingerprint tighter));
  (* permuted relations: relation ids are load-bearing in plans *)
  let permuted =
    Q.create
      ~relations:[ ("b", "t1"); ("a", "t0"); ("c", "t2") ]
      ~joins:[ j 0 "x" 1 "x"; j 1 "y" 2 "y" ]
      ~selections:[ { Q.on = { Q.rel = 1; column = "v" }; cmp = Q.Le;
                      value = Parqo.Value.Int 5 } ]
      ()
  in
  Alcotest.(check bool) "relation order matters" false
    (String.equal fp (Q.fingerprint permuted));
  (* projection order is position-significant *)
  let proj cols =
    Q.fingerprint
      (Q.create ~relations:[ ("a", "t0"); ("b", "t1") ]
         ~joins:[ j 0 "x" 1 "x" ] ~projection:cols ())
  in
  Alcotest.(check bool) "projection order matters" false
    (String.equal
       (proj [ { Q.rel = 0; column = "p" }; { Q.rel = 1; column = "q" } ])
       (proj [ { Q.rel = 1; column = "q" }; { Q.rel = 0; column = "p" } ]))

let suite =
  ( "query",
    [
      t "order by field" order_by_field;
      t "lookups" lookups;
      t "join topology" join_topology;
      t "connectivity" connectivity;
      t "create errors" create_errors;
      t "sql rendering" sql_rendering;
      t "catalog validation" validate_against_catalog;
      t "fingerprints" fingerprints;
    ] )
