(* The parallel data executor must agree with the sequential one on every
   legal annotated plan: this is the semantic check on the expansion's
   exchange placement. *)

module PE = Parqo.Parallel_exec
module Ex = Parqo.Executor
module B = Parqo.Batch
module J = Parqo.Join_tree
module M = Parqo.Join_method
module Op = Parqo.Op

let t name f = Alcotest.test_case name `Quick f

let setup ?(n = 3) ?(rows = 80) ?(seed = 7) () =
  let db, query = Parqo.Workloads.chain_db ~n ~rows ~seed () in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env = Parqo.Env.create ~machine ~catalog:db.Parqo.Datagen.catalog ~query () in
  (db, query, env)

let expand env tree =
  Parqo.Expand.expand env.Parqo.Env.estimator tree

let cloned_hash_join_agrees () =
  let db, query, env = setup () in
  let tree =
    J.join ~clone:4 M.Hash_join
      ~outer:(J.join ~clone:2 M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1))
      ~inner:(J.access 2)
  in
  let parallel = PE.run_query db query (expand env tree) in
  let sequential = Ex.run_query db query tree in
  Alcotest.(check bool) "same bag" true (B.equal_bags parallel sequential);
  Alcotest.(check bool) "non-trivial result" true (B.n_rows parallel > 0)

let cloned_sort_merge_agrees () =
  let db, query, env = setup () in
  let tree =
    J.join ~clone:3 M.Sort_merge ~outer:(J.access 0) ~inner:(J.access ~clone:2 1)
  in
  let parallel = PE.run_query db query (expand env tree) in
  let sequential = Ex.run_query db query tree in
  Alcotest.(check bool) "same bag" true (B.equal_bags parallel sequential)

let broadcast_nl_agrees () =
  let db, query, env = setup () in
  let tree =
    J.join ~clone:4 M.Nested_loops ~outer:(J.access ~clone:4 0) ~inner:(J.access 1)
  in
  let root = expand env tree in
  (* sanity: the expansion really broadcasts the inner *)
  let has_broadcast =
    Op.fold
      (fun acc n ->
        acc
        || match n.Op.kind with
           | Op.Exchange { mode = Op.Broadcast } -> true
           | _ -> false)
      false root
  in
  Alcotest.(check bool) "broadcast present" true has_broadcast;
  Alcotest.(check bool) "same bag" true
    (B.equal_bags (PE.run_query db query root) (Ex.run_query db query tree))

let repartition_routes_by_key () =
  (* a repartitioned stream puts equal keys in the same partition: the
     per-instance joins lose nothing (already covered by equality above)
     and the skew diagnostic reports sane ratios *)
  let db, query, env = setup ~rows:200 () in
  let tree =
    J.join ~clone:4 M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1)
  in
  let skew = PE.partition_skew db query (expand env tree) in
  Alcotest.(check bool) "skew measured for cloned ops" true (skew <> []);
  List.iter
    (fun (label, k, ratio) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%d ratio %.2f sane" label k ratio)
        true
        (ratio >= 1.0 && ratio <= float_of_int k))
    skew

let random_plans_agree () =
  let db, query, env = setup ~n:4 ~rows:60 ~seed:13 () in
  let rng = Parqo.Rng.create 31 in
  for _ = 1 to 20 do
    let tree = Helpers.random_tree rng env in
    let parallel = PE.run_query db query (expand env tree) in
    let sequential = Ex.run_query db query tree in
    Alcotest.(check bool)
      (Printf.sprintf "agree on %s" (J.to_string tree))
      true
      (B.equal_bags parallel sequential)
  done

let missing_exchange_detected () =
  (* hand-build an ill-partitioned tree: a degree-4 join over degree-2
     inputs without exchanges must be rejected, not silently wrong *)
  let db, query, env = setup () in
  let good = expand env (J.join ~clone:4 M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1)) in
  (* strip the exchanges *)
  let rec strip (n : Op.node) =
    match n.Op.kind with
    | Op.Exchange _ -> strip (List.hd n.Op.children)
    | _ -> { n with Op.children = List.map strip n.Op.children }
  in
  let bad = strip good in
  Alcotest.(check bool) "stripped tree rejected" true
    (try
       ignore (PE.run db query bad);
       false
     with Parqo.Parqo_error.Error e ->
       e.Parqo.Parqo_error.subsystem = "parallel-exec")

let suite =
  ( "parallel-exec",
    [
      t "cloned hash join" cloned_hash_join_agrees;
      t "cloned sort-merge" cloned_sort_merge_agrees;
      t "broadcast NL" broadcast_nl_agrees;
      t "repartition skew" repartition_routes_by_key;
      t "random plans agree" random_plans_agree;
      t "missing exchange detected" missing_exchange_detected;
    ] )
