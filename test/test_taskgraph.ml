module TG = Parqo.Task_graph
module J = Parqo.Join_tree
module M = Parqo.Join_method
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

let env () =
  let catalog, query = G.generate (G.default_spec G.Chain 3) in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  Parqo.Env.create ~machine ~catalog ~query ()

let lower env tree =
  let optree =
    Parqo.Expand.expand env.Parqo.Env.estimator tree
  in
  TG.of_optree env optree

let pipeline_is_one_stage () =
  let env = env () in
  (* scan -> probe (pipelined) with a build side: two stages *)
  let g = lower env (J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1)) in
  Alcotest.(check int) "probe stage + build stage" 2 (Array.length g.TG.stages);
  (match TG.validate g with Ok () -> () | Error e -> Alcotest.fail e);
  (* root stage holds scan(outer) and probe *)
  let root = g.TG.stages.(g.TG.root_stage) in
  Alcotest.(check int) "two tasks in pipeline" 2 (List.length root.TG.tasks);
  Alcotest.(check int) "root depends on build" 1 (List.length root.TG.deps)

let sort_merge_stages () =
  let env = env () in
  let g = lower env (J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1)) in
  (* merge stage + two sort stages (each sort pipelines its scan) *)
  Alcotest.(check int) "three stages" 3 (Array.length g.TG.stages);
  let root = g.TG.stages.(g.TG.root_stage) in
  Alcotest.(check int) "root waits for both sorts" 2 (List.length root.TG.deps)

let nl_index_inner_has_no_task () =
  let env = env () in
  let catalog = Parqo.Env.catalog env in
  let idx = List.hd (Parqo.Catalog.indexes_of catalog "t1") in
  let tree =
    J.join M.Nested_loops ~outer:(J.access 0)
      ~inner:(J.access ~path:(Parqo.Access_path.Index_scan idx) 1)
  in
  let g = lower env tree in
  Alcotest.(check int) "one stage" 1 (Array.length g.TG.stages);
  (* nl + outer scan only: the probed index contributes no task *)
  Alcotest.(check int) "two tasks" 2
    (List.length g.TG.stages.(g.TG.root_stage).TG.tasks)

let demands_match_cost_model () =
  let env = env () in
  let tree = J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1) in
  let g = lower env tree in
  let e = Parqo.Costmodel.evaluate env tree in
  (* stretch mode: the task graph's total work equals the plan's work *)
  Helpers.check_float ~eps:1e-6 "work agrees" e.Parqo.Costmodel.work
    (TG.total_work g)

let stage ?(tasks = []) ?(deps = []) stage_id =
  { TG.stage_id; tasks; deps; op_root = None }

let task ?(label = "t") task_id demands = { TG.task_id; label; demands }

let validate_catches_cycles () =
  let bad =
    {
      TG.stages = [| stage 0 ~deps:[ 1 ]; stage 1 ~deps:[ 0 ] |];
      n_resources = 1;
      root_stage = 0;
    }
  in
  match TG.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected cycle error"

let expect_error name g =
  match TG.validate g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail ("expected validation error: " ^ name)

(* the extended structural checks: stage-id mismatch, dangling deps,
   oversized/negative/NaN demand vectors *)
let validate_catches_malformed () =
  expect_error "stage_id mismatch"
    { TG.stages = [| stage 1 |]; n_resources = 1; root_stage = 0 };
  expect_error "dep out of range"
    { TG.stages = [| stage 0 ~deps:[ 3 ] |]; n_resources = 1; root_stage = 0 };
  expect_error "demand vector longer than n_resources"
    {
      TG.stages = [| stage 0 ~tasks:[ task 0 [| 1.; 1. |] ] |];
      n_resources = 1;
      root_stage = 0;
    };
  expect_error "negative demand"
    {
      TG.stages = [| stage 0 ~tasks:[ task 0 [| -1. |] ] |];
      n_resources = 1;
      root_stage = 0;
    };
  expect_error "NaN demand"
    {
      TG.stages = [| stage 0 ~tasks:[ task 0 [| Float.nan |] ] |];
      n_resources = 1;
      root_stage = 0;
    };
  (* and a well-formed graph passes *)
  match
    TG.validate
      {
        TG.stages = [| stage 0 ~tasks:[ task 0 [| 1. |] ] |];
        n_resources = 1;
        root_stage = 0;
      }
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("well-formed graph rejected: " ^ e)

(* malformed graphs are rejected at simulator entry with a structured
   error, not an index crash deep inside the event loop *)
let simulator_rejects_malformed () =
  let bad =
    {
      TG.stages = [| stage 0 ~tasks:[ task 0 [| -2.; 1. |] ] |];
      n_resources = 2;
      root_stage = 0;
    }
  in
  let raised =
    try
      ignore (Parqo.Simulator.run bad);
      false
    with Parqo.Parqo_error.Error e ->
      e.Parqo.Parqo_error.subsystem = "simulator"
  in
  Alcotest.(check bool) "Parqo_error from the simulator" true raised

(* lowering records the materialized subtree on every stage, so the
   replanner can size surviving checkpoints *)
let lowering_records_op_roots () =
  let env = env () in
  let g = lower env (J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1)) in
  Array.iter
    (fun (s : TG.stage) ->
      match s.TG.op_root with
      | Some _ -> ()
      | None ->
        Alcotest.fail
          (Printf.sprintf "stage %d lowered without an op_root" s.TG.stage_id))
    g.TG.stages

let suite =
  ( "task-graph",
    [
      t "pipeline is one stage" pipeline_is_one_stage;
      t "sort-merge stages" sort_merge_stages;
      t "NL index inner has no task" nl_index_inner_has_no_task;
      t "demands match cost model" demands_match_cost_model;
      t "validate catches cycles" validate_catches_cycles;
      t "validate catches malformed" validate_catches_malformed;
      t "simulator rejects malformed" simulator_rejects_malformed;
      t "lowering records op roots" lowering_records_op_roots;
    ] )
