module M = Parqo.Machine
module R = Parqo.Resource

let t name f = Alcotest.test_case name `Quick f

let shared_nothing () =
  let m = M.shared_nothing ~nodes:4 () in
  Alcotest.(check int) "4 cpus" 4 (List.length (M.cpu_ids m));
  Alcotest.(check int) "4 disks" 4 (List.length (M.disk_ids m));
  Alcotest.(check bool) "has network" true (M.network m <> None);
  Alcotest.(check int) "9 resources" 9 (M.n_resources m);
  (* node-local lookups *)
  let cpu2 = M.node_cpu m 2 in
  Alcotest.(check int) "cpu2 on node 2" 2 cpu2.R.node;
  let disk2 = M.node_disk m 2 in
  Alcotest.(check bool) "disk co-located" true (disk2.R.node = 2);
  (* single node has no network *)
  let solo = M.shared_nothing ~nodes:1 () in
  Alcotest.(check bool) "single node, no net" true (M.network solo = None)

let shared_memory () =
  let m = M.shared_memory ~cpus:4 ~disks:2 () in
  Alcotest.(check int) "4 cpus" 4 (List.length (M.cpu_ids m));
  Alcotest.(check int) "2 disks" 2 (List.length (M.disk_ids m));
  Alcotest.(check bool) "no network" true (M.network m = None);
  Alcotest.(check int) "one node" 1 m.M.nodes

let special_machines () =
  let seq = M.sequential () in
  Alcotest.(check int) "sequential: 2 resources" 2 (M.n_resources seq);
  let two = M.two_disks () in
  Alcotest.(check int) "example 3: disks only" 2 (List.length (M.disk_ids two));
  Alcotest.(check int) "example 3: no cpus" 0 (List.length (M.cpu_ids two))

let aggregation_modes () =
  let m = M.shared_nothing ~nodes:4 () in
  let check_mode name agg expected_dims =
    let dims, group = M.aggregate m agg in
    Alcotest.(check int) (name ^ " dims") expected_dims dims;
    (* every resource maps into range *)
    for id = 0 to M.n_resources m - 1 do
      let g = group id in
      Alcotest.(check bool) (name ^ " in range") true (g >= 0 && g < dims)
    done
  in
  check_mode "single" M.Single 1;
  check_mode "by-kind" M.By_kind 3;
  check_mode "by-node" M.By_node 4;
  check_mode "per-resource" M.Per_resource 9;
  (* by-kind groups cpus together *)
  let _, group = M.aggregate m M.By_kind in
  let cpu_groups = List.map group (M.cpu_ids m) in
  Alcotest.(check int) "all cpus one group" 1
    (List.length (List.sort_uniq compare cpu_groups));
  (* machines without a network have only two kinds *)
  let sm = M.shared_memory ~cpus:2 ~disks:2 () in
  Alcotest.(check int) "shared memory kinds" 2 (fst (M.aggregate sm M.By_kind))

let params_sanity () =
  let p = M.default_params in
  Alcotest.(check bool) "costs positive" true
    (p.M.io_page_cost > 0. && p.M.cpu_tuple_cost > 0.
    && p.M.tuples_per_page > 0.);
  Alcotest.(check bool) "delta k sane" true (p.M.pipeline_delta_k >= 0.)

(* rescale / restore: per-resource speeds move, ids and dimensions stay *)
let speed_lifecycle () =
  let m = M.shared_nothing ~nodes:4 () in
  let cpu0 = List.hd (M.cpu_ids m) in
  Helpers.check_float "nominal speed" 1. (M.speed m cpu0);
  Helpers.check_float "nominal capacity" (float_of_int (M.n_resources m))
    (M.effective_capacity m);
  let slow = M.rescale m ~speeds:[ (cpu0, 0.25) ] in
  Helpers.check_float "rescaled speed" 0.25 (M.speed slow cpu0);
  Alcotest.(check bool) "still available" true (M.available slow cpu0);
  Alcotest.(check int) "dimensions stable" (M.n_resources m)
    (M.n_resources slow);
  Helpers.check_float "capacity drops by the delta"
    (M.effective_capacity m -. 0.75)
    (M.effective_capacity slow);
  (* later entries win *)
  let twice = M.rescale m ~speeds:[ (cpu0, 0.25); (cpu0, 0.5) ] in
  Helpers.check_float "last entry wins" 0.5 (M.speed twice cpu0);
  (* restore returns to nominal *)
  let back = M.restore slow in
  Helpers.check_float "restored to nominal" 1. (M.speed back cpu0);
  let partial = M.restore ~up:[ cpu0 + 999 ] slow in
  Helpers.check_float "out-of-range restore ignored" 0.25
    (M.speed partial cpu0);
  (* degrade is rescale-to-zero: excluded from service, dims stable *)
  let down = M.degrade m ~down:[ cpu0 ] in
  Helpers.check_float "degraded speed" 0. (M.speed down cpu0);
  Alcotest.(check bool) "not available" false (M.available down cpu0);
  Alcotest.(check bool) "dropped from cpu_ids" false
    (List.mem cpu0 (M.cpu_ids down));
  Alcotest.(check (list int)) "listed in down_ids" [ cpu0 ] (M.down_ids down);
  Alcotest.(check int) "dims survive degrade" (M.n_resources m)
    (M.n_resources down)

let grow_appends () =
  let m = M.shared_nothing ~nodes:4 () in
  let nr = M.n_resources m in
  let g = M.grow ~speed:2. m [ (R.Cpu, "cpu-x", 0) ] in
  Alcotest.(check int) "one appended id" (nr + 1) (M.n_resources g);
  Alcotest.(check bool) "existing ids untouched" true
    (List.for_all (fun id -> M.speed g id = M.speed m id)
       (M.cpu_ids m @ M.disk_ids m));
  Alcotest.(check bool) "grown id is a cpu" true (List.mem nr (M.cpu_ids g));
  Helpers.check_float "grown speed" 2. (M.speed g nr);
  (* the grow speed is the grown resource's nominal: restore keeps it *)
  let cycled = M.restore (M.rescale g ~speeds:[ (nr, 0.5) ]) in
  Helpers.check_float "restore returns grown id to its own nominal" 2.
    (M.speed cycled nr);
  (* growing onto a new site expands the node count *)
  let far = M.grow m [ (R.Disk, "disk-y", 7) ] in
  Alcotest.(check bool) "nodes expand to cover the site" true (far.M.nodes >= 8)

(* the census validation: no resource kind present in the topology may be
   left with nothing in service *)
let census_errors () =
  let m = M.shared_nothing ~nodes:2 () in
  let all_disks = M.disk_ids m in
  (match M.degrade m ~down:all_disks with
  | (_ : M.t) -> Alcotest.fail "degrading every disk must raise"
  | exception Parqo.Parqo_error.Error e ->
    Alcotest.(check string) "structured subsystem" "machine"
      e.Parqo.Parqo_error.subsystem);
  (match M.network m with
  | None -> ()
  | Some net -> (
    match M.rescale m ~speeds:[ (net.R.id, 0.) ] with
    | (_ : M.t) -> Alcotest.fail "killing the only network must raise"
    | exception Parqo.Parqo_error.Error _ -> ()));
  (* invalid speeds are rejected up front *)
  List.iter
    (fun s ->
      match M.rescale m ~speeds:[ (0, s) ] with
      | (_ : M.t) -> Alcotest.failf "speed %f accepted" s
      | exception Parqo.Parqo_error.Error _ -> ())
    [ -1.; Float.nan; Float.infinity ];
  (match M.grow ~speed:0. m [ (R.Cpu, "c", 0) ] with
  | (_ : M.t) -> Alcotest.fail "grow at speed 0 must raise"
  | exception Parqo.Parqo_error.Error _ -> ());
  (* degrading one of two disks is fine: the census survives *)
  let ok = M.degrade m ~down:[ List.hd all_disks ] in
  Alcotest.(check int) "one disk left" 1 (List.length (M.disk_ids ok))

let errors () =
  Alcotest.check_raises "0 nodes" (Invalid_argument "Machine.shared_nothing")
    (fun () -> ignore (M.shared_nothing ~nodes:0 ()));
  Alcotest.check_raises "0 cpus" (Invalid_argument "Machine.shared_memory")
    (fun () -> ignore (M.shared_memory ~cpus:0 ~disks:1 ()));
  let two = M.two_disks () in
  Alcotest.check_raises "no cpu on diskful machine" Not_found (fun () ->
      ignore (M.node_cpu two 0))

let suite =
  ( "machine",
    [
      t "shared nothing" shared_nothing;
      t "shared memory" shared_memory;
      t "special machines" special_machines;
      t "aggregation modes" aggregation_modes;
      t "params sanity" params_sanity;
      t "speed lifecycle" speed_lifecycle;
      t "grow appends" grow_appends;
      t "census errors" census_errors;
      t "errors" errors;
    ] )
