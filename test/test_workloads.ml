module W = Parqo.Workloads
module Q = Parqo.Query

let t name f = Alcotest.test_case name `Quick f

let portfolio () =
  let db, query = W.portfolio ~seed:1 () in
  (match Q.validate db.Parqo.Datagen.catalog query with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "four relations" 4 (Q.n_relations query);
  Alcotest.(check int) "three joins" 3 (List.length query.Q.joins);
  Alcotest.(check bool) "star around trade" true
    (Q.connected query (Parqo.Bitset.full 4));
  Alcotest.(check int) "trade rows" 1000
    (Array.length (Parqo.Datagen.rows_of db "trade"));
  (* scale parameter *)
  let db2, _ = W.portfolio ~scale:2 ~seed:1 () in
  Alcotest.(check int) "scaled trade rows" 2000
    (Array.length (Parqo.Datagen.rows_of db2 "trade"))

let university () =
  let db, query = W.university ~seed:1 () in
  (match Q.validate db.Parqo.Datagen.catalog query with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "two relations" 2 (Q.n_relations query);
  Alcotest.(check int) "three indexes" 3
    (List.length (Parqo.Catalog.indexes db.Parqo.Datagen.catalog))

let chain () =
  let db, query = W.chain_db ~n:5 ~rows:50 ~seed:1 () in
  Alcotest.(check int) "five relations" 5 (Q.n_relations query);
  Alcotest.(check int) "four joins" 4 (List.length query.Q.joins);
  (match Q.validate db.Parqo.Datagen.catalog query with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.check_raises "n < 1 rejected"
    (Invalid_argument "Workloads.chain_db: n < 1") (fun () ->
      ignore (W.chain_db ~n:0 ~seed:1 ()))

let tpch () =
  let { W.db; q3; q5; q10 } = W.tpch ~seed:1 () in
  List.iter
    (fun (name, q) ->
      match Q.validate db.Parqo.Datagen.catalog q with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    [ ("q3", q3); ("q5", q5); ("q10", q10) ];
  Alcotest.(check int) "q5 is a six-way join" 6 (Q.n_relations q5);
  Alcotest.(check int) "q5 has six predicates" 6 (List.length q5.Q.joins);
  Alcotest.(check bool) "q5 connected" true
    (Q.connected q5 (Parqo.Bitset.full 6));
  Alcotest.(check int) "lineitem rows" 6000
    (Array.length (Parqo.Datagen.rows_of db "lineitem"));
  Alcotest.(check int) "q3 orders by day" 1 (List.length q3.Q.order_by);
  (* scaling *)
  let { W.db = db2; _ } = W.tpch ~scale:2 ~seed:1 () in
  Alcotest.(check int) "scaled lineitem" 12000
    (Array.length (Parqo.Datagen.rows_of db2 "lineitem"))

let tpch_q3_executes () =
  let { W.db; q3; _ } = W.tpch ~seed:2 () in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  let env = Parqo.Env.create ~machine ~catalog:db.Parqo.Datagen.catalog ~query:q3 () in
  let o = Parqo.Optimizer.minimize_response_time env in
  match o.Parqo.Optimizer.best with
  | None -> Alcotest.fail "no plan"
  | Some best ->
    let out = Parqo.Executor.run_query db q3 best.Parqo.Costmodel.tree in
    let reference = Parqo.Executor.reference db q3 in
    (* reference applies no ORDER BY; compare as bags *)
    Alcotest.(check bool) "matches reference bag" true
      (Parqo.Batch.equal_bags out reference);
    (* the optimizer accounted for the ORDER BY *)
    Alcotest.(check bool) "rows ordered by o_day" true
      (let day_col = 1 in
       let rec sorted = function
         | a :: (b :: _ as rest) ->
           Parqo.Value.compare a.(day_col) b.(day_col) <= 0 && sorted rest
         | _ -> true
       in
       sorted out.Parqo.Batch.rows)

let deterministic () =
  let a, _ = W.portfolio ~seed:42 () and b, _ = W.portfolio ~seed:42 () in
  Alcotest.(check bool) "same seed, same data" true
    (Parqo.Datagen.rows_of a "trade" = Parqo.Datagen.rows_of b "trade")

(* arrival processes: non-decreasing, deterministic in the seed, and
   validated *)
let arrivals () =
  List.iter
    (fun process ->
      let label = W.arrival_to_string process in
      let draw () =
        W.arrivals (Parqo.Rng.create 3) ~process ~n:100
      in
      let a = draw () in
      Alcotest.(check int) (label ^ ": count") 100 (Array.length a);
      Alcotest.(check bool) (label ^ ": starts at origin") true (a.(0) = 0.);
      Array.iteri
        (fun i at ->
          if i > 0 then
            Alcotest.(check bool)
              (label ^ ": non-decreasing")
              true (at >= a.(i - 1)))
        a;
      Alcotest.(check bool) (label ^ ": deterministic") true (draw () = a))
    [ W.Uniform 50.; W.Poisson 50.; W.Burst { size = 10; period = 0.5 } ];
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative n rejected" true
    (bad (fun () -> W.arrivals (Parqo.Rng.create 0) ~process:(W.Uniform 1.) ~n:(-1)));
  Alcotest.(check bool) "zero rate rejected" true
    (bad (fun () -> W.arrivals (Parqo.Rng.create 0) ~process:(W.Poisson 0.) ~n:1));
  Alcotest.(check bool) "zero burst rejected" true
    (bad (fun () ->
         W.arrivals (Parqo.Rng.create 0)
           ~process:(W.Burst { size = 0; period = 1. })
           ~n:1))

(* the serving pool: every query validates against its catalog, the
   pool repeats fingerprints (the cache has something to hit), and
   base_card changes statistics without changing the queries *)
let serving_pool () =
  let catalog, pool = W.serving_pool ~seed:11 () in
  Alcotest.(check int) "pool size" 24 (Array.length pool);
  Array.iter
    (fun q ->
      match Q.validate catalog q with
      | Ok () -> ()
      | Error e -> Alcotest.failf "pool query invalid: %s" e)
    pool;
  let fps = Array.map Q.fingerprint pool in
  let distinct =
    List.length (List.sort_uniq String.compare (Array.to_list fps))
  in
  Alcotest.(check bool) "fingerprints repeat across the pool" true
    (distinct < Array.length pool);
  let _, pool' = W.serving_pool ~seed:11 ~base_card:200. () in
  Alcotest.(check bool) "base_card leaves the queries alone" true
    (Array.for_all2
       (fun a b -> String.equal (Q.fingerprint a) (Q.fingerprint b))
       pool pool');
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "tiny pool rejected" true
    (bad (fun () -> W.serving_pool ~pool:0 ~seed:1 ()))

let suite =
  ( "workloads",
    [
      t "portfolio" portfolio;
      t "university" university;
      t "chain" chain;
      t "tpch" tpch;
      t "tpch q3 executes" tpch_q3_executes;
      t "deterministic" deterministic;
      t "arrivals" arrivals;
      t "serving pool" serving_pool;
    ] )
