module OC = Parqo.Opcost
module D = Parqo.Descriptor
module Op = Parqo.Op
module J = Parqo.Join_tree
module M = Parqo.Join_method
module G = Parqo.Query_gen
module X = Parqo.Expand

let t name f = Alcotest.test_case name `Quick f

let setup ?(nodes = 2) ?(shape = G.Chain) ?(n = 2) () =
  let catalog, query = G.generate (G.default_spec shape n) in
  let machine = Parqo.Machine.shared_nothing ~nodes () in
  let est = Parqo.Estimator.create catalog query in
  (machine, est)

let expand est tree = X.expand est tree

let find_kind root pred =
  match Op.find pred root with
  | Some n -> n
  | None -> Alcotest.fail "operator not found"

let scan_costs () =
  let machine, est = setup () in
  let root = expand est (J.access 0) in
  let d = OC.base (OC.prepare machine est) est root in
  Alcotest.(check bool) "scan does positive work" true (D.work d > 0.);
  Helpers.check_float "scan streams from t=0" 0. (D.first_tuple_time d);
  (* the scan's I/O lands on the table's disk only *)
  let work = D.work_vector d in
  let disk_ids = Parqo.Machine.disk_ids machine in
  let io_disks =
    List.filter (fun id -> Parqo.Vecf.get work id > 0.) disk_ids
  in
  Alcotest.(check int) "one disk" 1 (List.length io_disks)

let blocking_ops_block () =
  let machine, est = setup () in
  let root = expand est (J.join M.Sort_merge ~outer:(J.access 0) ~inner:(J.access 1)) in
  let sort = find_kind root (fun n -> match n.Op.kind with Op.Sort _ -> true | _ -> false) in
  let d = OC.base (OC.prepare machine est) est sort in
  Helpers.check_float "sort cannot stream" (D.response_time d) (D.first_tuple_time d);
  let build =
    expand est (J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1))
    |> fun r -> find_kind r (fun n -> n.Op.kind = Op.Hash_build)
  in
  let db = OC.base (OC.prepare machine est) est build in
  Helpers.check_float "build cannot stream" (D.response_time db)
    (D.first_tuple_time db)

let cloning_reduces_time () =
  let machine, est = setup ~nodes:4 () in
  let time clone =
    let root = expand est (J.join ~clone M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1)) in
    let probe = find_kind root (fun n -> n.Op.kind = Op.Hash_probe) in
    D.response_time (OC.base (OC.prepare machine est) est probe)
  in
  Alcotest.(check bool) "clone 4 faster than 1" true (time 4 < time 1);
  Alcotest.(check bool) "clone 2 between" true (time 4 <= time 2 && time 2 <= time 1)

let clone_overhead_charged () =
  let catalog, query = G.generate (G.default_spec G.Chain 2) in
  let params = { Parqo.Machine.default_params with clone_overhead = 0.5 } in
  let m_cheap = Parqo.Machine.shared_nothing ~nodes:4 () in
  let m_costly = Parqo.Machine.shared_nothing ~params ~nodes:4 () in
  let est = Parqo.Estimator.create catalog query in
  let probe_time machine =
    let root = expand est (J.join ~clone:4 M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1)) in
    let probe = find_kind root (fun n -> n.Op.kind = Op.Hash_probe) in
    D.response_time (OC.base (OC.prepare machine est) est probe)
  in
  Alcotest.(check bool) "overhead slows clones" true
    (probe_time m_costly > probe_time m_cheap)

let unclustered_index_penalty () =
  let machine, est = setup () in
  let catalog = Parqo.Estimator.catalog est in
  let indexes = Parqo.Catalog.indexes_of catalog "t0" in
  let clustered = List.find (fun (i : Parqo.Index.t) -> i.Parqo.Index.clustered) indexes in
  let time idx =
    let root = expand est (J.access ~path:(Parqo.Access_path.Index_scan idx) 0) in
    D.work (OC.base (OC.prepare machine est) est root)
  in
  let unclustered = { clustered with Parqo.Index.clustered = false } in
  Alcotest.(check bool) "unclustered costs more" true
    (time unclustered > time clustered)

let nl_index_probe_io_on_index_disk () =
  let machine, est = setup () in
  let catalog = Parqo.Estimator.catalog est in
  let idx = List.hd (Parqo.Catalog.indexes_of catalog "t1") in
  let tree =
    J.join M.Nested_loops ~outer:(J.access 0)
      ~inner:(J.access ~path:(Parqo.Access_path.Index_scan idx) 1)
  in
  let root = expand est tree in
  Alcotest.(check bool) "inner is free" true (OC.nl_inner_is_free root);
  let d = OC.base (OC.prepare machine est) est root in
  (* probing I/O charged to the index's machine disk *)
  let w = D.work_vector d in
  let disk_work =
    List.fold_left (fun acc id -> acc +. Parqo.Vecf.get w id) 0.
      (Parqo.Machine.disk_ids machine)
  in
  Alcotest.(check bool) "probe I/O present" true (disk_work > 0.)

let pure_nl_quadratic () =
  let machine, est = setup () in
  let root = expand est (J.join M.Nested_loops ~outer:(J.access 0) ~inner:(J.access 1)) in
  Alcotest.(check bool) "pure NL inner is costed" false (OC.nl_inner_is_free root);
  let d = OC.base (OC.prepare machine est) est root in
  (* outer 1000 x inner 1500 comparisons at compare cost dominate *)
  Alcotest.(check bool) "quadratic work" true (D.work d > 1000.)

let exchange_uses_network () =
  let machine, est = setup ~nodes:4 () in
  let tree = J.join ~clone:4 M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1) in
  let root = expand est tree in
  let xchg = find_kind root (fun n -> match n.Op.kind with Op.Exchange _ -> true | _ -> false) in
  let d = OC.base (OC.prepare machine est) est xchg in
  match Parqo.Machine.network machine with
  | Some net ->
    Alcotest.(check bool) "network work" true
      (Parqo.Vecf.get (D.work_vector d) net.Parqo.Resource.id > 0.)
  | None -> Alcotest.fail "expected a network"

let diskless_machine_drops_io () =
  (* Example 3 machine: disks only, no CPUs — cpu work is not modeled *)
  let catalog, query, machine = Parqo.Scenarios.ctr_ci () in
  let est = Parqo.Estimator.create catalog query in
  let root = expand est (J.access 0) in
  let d = OC.base (OC.prepare machine est) est root in
  Alcotest.(check bool) "io work present on diskful machine" true (D.work d > 0.)

let hash_spill_threshold () =
  (* a build crossing the per-clone memory limit pays partition I/O, and
     a big enough inner makes sort-merge beat hash join *)
  let mk_env inner_card =
    let col distinct = Parqo.Stats.column ~distinct ~min_v:0. ~max_v:1e6 () in
    let catalog =
      Parqo.Catalog.create
        ~tables:
          [
            Parqo.Table.create ~name:"o"
              ~columns:[ ("k", col 1000.) ] ~cardinality:10_000. ~disks:[ 0 ] ();
            Parqo.Table.create ~name:"i"
              ~columns:[ ("k", col 1000.) ] ~cardinality:inner_card ~disks:[ 1 ] ();
          ]
        ~indexes:[]
    in
    let query =
      Parqo.Query.create
        ~relations:[ ("o", "o"); ("i", "i") ]
        ~joins:
          [
            {
              Parqo.Query.left = { Parqo.Query.rel = 0; column = "k" };
              right = { Parqo.Query.rel = 1; column = "k" };
            };
          ]
        ()
    in
    Parqo.Env.create ~machine:(Parqo.Machine.shared_nothing ~nodes:2 ())
      ~catalog ~query ()
  in
  let hj_work env =
    (Parqo.Costmodel.evaluate env
       (J.join M.Hash_join ~outer:(J.access 0) ~inner:(J.access 1)))
      .Parqo.Costmodel.work
  in
  let small = mk_env 10_000. and big = mk_env 200_000. in
  (* spilling multiplies work beyond the pure cardinality ratio *)
  let ratio = hj_work big /. hj_work small in
  Alcotest.(check bool)
    (Printf.sprintf "spill superlinear: ratio %.1f > 20x card ratio" ratio)
    true (ratio > 20.);
  (* the memory threshold is per clone: cloning the join 2 ways halves
     the per-lane build and cuts the spill *)
  let at_edge = mk_env 80_000. in
  let cloned =
    (Parqo.Costmodel.evaluate at_edge
       (J.join ~clone:2 M.Hash_join
          ~outer:(J.access ~clone:2 0) ~inner:(J.access ~clone:2 1)))
      .Parqo.Costmodel.work
  in
  Alcotest.(check bool) "cloning avoids the spill" true
    (cloned < hj_work at_edge)

(* speed-aware costing: demand = share / speed, in nominal-speed time
   units.  All speeds 1.0 is bit-identical to not rescaling at all, and
   halving one resource's speed exactly doubles its coordinate. *)
let speed_scales_demands () =
  let machine, est = setup () in
  let root = expand est (J.access 0) in
  let vec m = D.work_vector (OC.base (OC.prepare m est) est root) in
  let bits = Int64.bits_of_float in
  let all_ids = List.init (Parqo.Machine.n_resources machine) Fun.id in
  let nominal =
    Parqo.Machine.rescale machine
      ~speeds:(List.map (fun id -> (id, 1.0)) all_ids)
  in
  Alcotest.(check (array int64)) "all-1.0 rescale is bit-identical"
    (Array.map bits (Parqo.Vecf.to_array (vec machine)))
    (Array.map bits (Parqo.Vecf.to_array (vec nominal)));
  (* the scan's disk at half speed: its coordinate doubles, bit-exactly *)
  let base = vec machine in
  let disk =
    List.find
      (fun id -> Parqo.Vecf.get base id > 0.)
      (Parqo.Machine.disk_ids machine)
  in
  let slow = vec (Parqo.Machine.rescale machine ~speeds:[ (disk, 0.5) ]) in
  Alcotest.(check int64) "half speed doubles the coordinate"
    (bits (2. *. Parqo.Vecf.get base disk))
    (bits (Parqo.Vecf.get slow disk));
  (* untouched coordinates are untouched *)
  List.iter
    (fun id ->
      if id <> disk then
        Alcotest.(check int64)
          (Printf.sprintf "resource %d unchanged" id)
          (bits (Parqo.Vecf.get base id))
          (bits (Parqo.Vecf.get slow id)))
    all_ids

let suite =
  ( "opcost",
    [
      t "hash spill threshold" hash_spill_threshold;
      t "scan costs" scan_costs;
      t "blocking ops block" blocking_ops_block;
      t "cloning reduces time" cloning_reduces_time;
      t "clone overhead" clone_overhead_charged;
      t "unclustered penalty" unclustered_index_penalty;
      t "NL index probe" nl_index_probe_io_on_index_disk;
      t "pure NL quadratic" pure_nl_quadratic;
      t "exchange network" exchange_uses_network;
      t "two-disk machine" diskless_machine_drops_io;
      t "speed scales demands" speed_scales_demands;
    ] )
