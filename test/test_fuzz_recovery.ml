(* Recovery fuzzing: random queries x random plans x random fault
   schedules (fail-stops, stragglers, full- and partial-loss outages)
   under every recovery policy.  The simulator must never raise, keep
   utilization at or below 1, and — when no re-plan splice rewrites the
   graph — never finish before the failure-free run.  All draws are
   seed-driven, so a failure reproduces from the case number. *)

module Sim = Parqo.Simulator
module F = Parqo.Fault
module R = Parqo.Recovery
module A = Parqo.Adaptive

let t name f = Alcotest.test_case name `Quick f

let policies =
  [
    ("retry", R.retry_task ());
    ("stage", R.Restart_stage);
    ("sync", R.Restart_from_sync);
    ("replan", R.replan ());
  ]

let is_replan = function R.Replan _ -> true | _ -> false

let random_schedule rng ~n_resources ~horizon =
  let fail = Parqo.Rng.float rng 0.6 in
  let base =
    F.default ~seed:(Parqo.Rng.int rng 10_000) ~straggler:(Parqo.Rng.bool rng)
      ~fault_rate:fail ()
  in
  let outages =
    if Parqo.Rng.bool rng then
      F.random_outages rng ~n_resources ~horizon
        ~rate:(0.5 +. Parqo.Rng.float rng 2.)
        ~mean_duration:(0.1 *. horizon)
    else []
  in
  (* mix in partial-loss outages so degradation paths are covered too *)
  let outages =
    List.map
      (fun (o : F.outage) ->
        if Parqo.Rng.bool rng then { o with F.factor = Parqo.Rng.float rng 0.9 }
        else o)
      outages
  in
  { base with F.outages }

let check_run ~case ~name ~clean ~spliced (o : Sim.outcome) =
  let ctx fmt = Printf.sprintf ("case %d %s: " ^^ fmt) case name in
  Alcotest.(check bool)
    (ctx "makespan finite positive")
    true
    (Float.is_finite o.Sim.makespan && o.Sim.makespan > 0.);
  Alcotest.(check bool)
    (ctx "utilization <= 1")
    true
    (Sim.utilization o <= 1. +. 1e-9);
  Alcotest.(check bool)
    (ctx "busy finite")
    true
    (Array.for_all Float.is_finite o.Sim.busy);
  (* a re-plan splice may legitimately beat the original plan; every
     other run only adds recovery work on top of the clean makespan.
     The tolerance is relative: recovery replays work at different
     times, so rounding differs from the clean run by a few ulps *)
  if not spliced then
    Alcotest.(check bool)
      (ctx "no faster than failure-free")
      true
      (o.Sim.makespan +. 1e-9 +. (1e-9 *. clean) >= clean)

let fuzz () =
  let rng = Parqo.Rng.create 20260806 in
  let cases = ref 0 in
  for case = 1 to 25 do
    let n = 3 + Parqo.Rng.int rng 3 in
    let env = Helpers.random_env rng ~n in
    let tree = Helpers.random_tree rng env in
    let clean = (A.simulate env tree).A.outcome in
    let n_resources =
      Parqo.Machine.n_resources env.Parqo.Env.machine
    in
    for _schedule = 1 to 2 do
      let faults =
        random_schedule rng ~n_resources ~horizon:clean.Sim.makespan
      in
      List.iter
        (fun (name, recovery) ->
          incr cases;
          match A.simulate ~faults ~recovery env tree with
          | r ->
            let o = r.A.outcome in
            check_run ~case ~name ~clean:clean.Sim.makespan
              ~spliced:(o.Sim.n_replans > 0) o;
            (* the re-optimizations are domain-parallel but merge
               deterministically: 4 domains replay the run bit-for-bit *)
            if is_replan recovery && o.Sim.n_replans > 0 then begin
              let d4 = A.simulate ~faults ~recovery ~domains:4 env tree in
              Alcotest.(check int64)
                (Printf.sprintf "case %d: domains 1 vs 4 makespan bits" case)
                (Int64.bits_of_float o.Sim.makespan)
                (Int64.bits_of_float d4.A.outcome.Sim.makespan)
            end
          | exception e ->
            Alcotest.failf "case %d %s: raised %s" case name
              (Printexc.to_string e))
        policies
    done
  done;
  Alcotest.(check bool) "at least 200 cases" true (!cases >= 200)

(* Server-mode fuzzing: random arrival traces x deadlines x chaos
   configs through the serving layer.  The server must never raise,
   never exceed the in-flight cap, and account for every request as
   Planned, Degraded or Rejected. *)
let server_fuzz () =
  let module Server = Parqo_serve.Server in
  let module Chaos = Parqo_serve.Chaos in
  let rng = Parqo.Rng.create 20260809 in
  let machine = Parqo.Machine.shared_nothing ~nodes:4 () in
  (* one small pool for every case keeps the real optimizer work low *)
  let catalog, pool =
    Parqo.Workloads.serving_pool ~n_tables:4 ~max_relations:3 ~pool:6 ~seed:3 ()
  in
  for case = 1 to 30 do
    let rate = 20. +. Parqo.Rng.float rng 480. in
    let process =
      match Parqo.Rng.int rng 3 with
      | 0 -> Parqo.Workloads.Uniform rate
      | 1 -> Parqo.Workloads.Poisson rate
      | _ ->
        Parqo.Workloads.Burst
          {
            size = 1 + Parqo.Rng.int rng 10;
            period = 0.01 +. Parqo.Rng.float rng 0.2;
          }
    in
    let n = 10 + Parqo.Rng.int rng 30 in
    let deadline =
      if Parqo.Rng.bool rng then Some (0.001 +. Parqo.Rng.float rng 0.1)
      else None
    in
    let chaos =
      if Parqo.Rng.bool rng then
        {
          Chaos.seed = Parqo.Rng.int rng 1000;
          slow_rate = Parqo.Rng.float rng 0.5;
          slow_seconds = Parqo.Rng.float rng 0.05;
          poison_rate = Parqo.Rng.float rng 0.8;
          epoch_bump_every = Parqo.Rng.int rng 20;
          (* the machine moves under roughly a third of the cases:
             degrade/brownout/restore through the update_machine epoch
             path, census-invalid ops skipped server-side *)
          machine_event_rate = Parqo.Rng.float rng 0.6;
        }
      else Chaos.none
    in
    let config =
      {
        Server.default_config with
        Server.queue_cap = 1 + Parqo.Rng.int rng 8;
        workers = 1 + Parqo.Rng.int rng 2;
        max_attempts = 1 + Parqo.Rng.int rng 3;
        budget = Parqo.Budget.expansions (1 + Parqo.Rng.int rng 2000);
        chaos;
      }
    in
    let ctx fmt = Printf.sprintf ("server case %d: " ^^ fmt) case in
    match
      let arrivals = Parqo.Workloads.arrivals rng ~process ~n in
      let reqs = Server.requests rng ~pool ~arrivals ?deadline () in
      let server = Server.create ~config ~machine ~catalog () in
      Server.run server reqs
    with
    | r ->
      let s = r.Server.stats in
      Alcotest.(check int) (ctx "dispositions partition") n
        (s.Server.planned + s.Server.degraded + s.Server.rejected);
      Alcotest.(check bool) (ctx "in-flight cap held") true
        (s.Server.max_in_flight <= config.Server.queue_cap);
      Array.iter
        (fun (c : Server.completion) ->
          match (c.Server.disposition, c.Server.plan) with
          | (Server.Planned | Server.Degraded _), Some _ -> ()
          | Server.Rejected _, None -> ()
          | _ ->
            Alcotest.failf "case %d: request %d plan/disposition mismatch"
              case c.Server.request.Server.id)
        r.Server.completions
    | exception e ->
      Alcotest.failf "server case %d raised %s" case (Printexc.to_string e)
  done

(* The heterogeneous-machine fuzzer: random degrade/rescale/grow/restore
   lifecycles applied to the machine before planning, then random fault
   schedules x every recovery policy.  The stack must never raise, keep
   utilization at or below 1, and an all-nominal (speeds = 1.0) rescale
   must stay Int64-bit-identical to the untouched machine at 1 and 4
   search domains. *)
let hetero_machine_fuzz () =
  let module M = Parqo.Machine in
  let rng = Parqo.Rng.create 20260814 in
  for case = 1 to 8 do
    let n = 3 + Parqo.Rng.int rng 2 in
    let catalog, query = Parqo.Query_gen.random rng ~n () in
    let base = M.shared_nothing ~nodes:4 () in
    (* a random machine lifecycle; census-invalid steps are skipped the
       same way the serving layer skips them *)
    let machine = ref base in
    for _step = 1 to 1 + Parqo.Rng.int rng 4 do
      let nr = M.n_resources !machine in
      let apply () =
        match Parqo.Rng.int rng 4 with
        | 0 -> M.degrade !machine ~down:[ Parqo.Rng.int rng nr ]
        | 1 ->
          M.rescale !machine
            ~speeds:[ (Parqo.Rng.int rng nr, 0.2 +. Parqo.Rng.float rng 1.3) ]
        | 2 ->
          let kind =
            if Parqo.Rng.bool rng then Parqo.Resource.Cpu
            else Parqo.Resource.Disk
          in
          M.grow
            ~speed:(0.5 +. Parqo.Rng.float rng 2.)
            !machine
            [ (kind, Printf.sprintf "grown-%d" nr, Parqo.Rng.int rng 4) ]
        | _ -> M.restore !machine
      in
      match apply () with
      | m -> machine := m
      | exception Parqo.Parqo_error.Error _ -> ()
    done;
    let env = Parqo.Env.create ~machine:!machine ~catalog ~query () in
    let tree = Helpers.random_tree rng env in
    let clean = (A.simulate env tree).A.outcome in
    let faults =
      random_schedule rng
        ~n_resources:(M.n_resources !machine)
        ~horizon:clean.Sim.makespan
    in
    List.iter
      (fun (name, recovery) ->
        match A.simulate ~faults ~recovery env tree with
        | r ->
          check_run ~case
            ~name:("hetero " ^ name)
            ~clean:clean.Sim.makespan
            ~spliced:(r.A.outcome.Sim.n_replans > 0)
            r.A.outcome
        | exception e ->
          Alcotest.failf "hetero case %d %s: raised %s" case name
            (Printexc.to_string e))
      policies;
    (* speeds = 1.0 everywhere is the homogeneous baseline, bit-for-bit *)
    let all_nominal =
      M.rescale base
        ~speeds:(List.init (M.n_resources base) (fun id -> (id, 1.0)))
    in
    let env0 = Parqo.Env.create ~machine:base ~catalog ~query () in
    let env1 = Parqo.Env.create ~machine:all_nominal ~catalog ~query () in
    let want = (A.simulate env0 tree).A.outcome in
    List.iter
      (fun domains ->
        let got = (A.simulate ~domains env1 tree).A.outcome in
        Alcotest.(check int64)
          (Printf.sprintf
             "case %d: nominal rescale makespan bits (domains %d)" case
             domains)
          (Int64.bits_of_float want.Sim.makespan)
          (Int64.bits_of_float got.Sim.makespan);
        Alcotest.(check (array int64))
          (Printf.sprintf "case %d: nominal rescale busy bits (domains %d)"
             case domains)
          (Array.map Int64.bits_of_float want.Sim.busy)
          (Array.map Int64.bits_of_float got.Sim.busy))
      [ 1; 4 ]
  done

(* the same property pushed through the workload layer: random machine-
   event sequences (brownouts, dead windows with later restores,
   speed-ups) x every scheduling policy — never raises, busy conservation
   holds, and per-resource delivered work fits inside the effective-
   capacity envelope *)
let hetero_scheduler_fuzz () =
  let module Sched = Parqo.Scheduler in
  let module TG = Parqo.Task_graph in
  let module Cm = Parqo.Costmodel in
  (* piecewise-constant capacity integral of one resource over
     [0, until), from the event list *)
  let capacity_integral events r until =
    let evs =
      List.filter (fun e -> e.Sched.ev_resource = r) events
      |> List.stable_sort (fun a b -> Float.compare a.Sched.ev_at b.Sched.ev_at)
    in
    let rec go t speed acc = function
      | [] -> acc +. (Float.max 0. (until -. t) *. speed)
      | (e : Sched.machine_event) :: rest ->
        let te = Float.min until (Float.max t e.Sched.ev_at) in
        go te e.Sched.ev_speed (acc +. ((te -. t) *. speed)) rest
    in
    go 0. 1. 0. evs
  in
  let rng = Parqo.Rng.create 20260815 in
  for case = 1 to 8 do
    let nj = 2 + Parqo.Rng.int rng 2 in
    let graphs =
      Array.init nj (fun _ ->
          let n = 2 + Parqo.Rng.int rng 2 in
          let env = Helpers.random_env rng ~n in
          let tree = Helpers.random_tree rng env in
          TG.of_optree env (Cm.evaluate env tree).Cm.optree)
    in
    let nr = graphs.(0).TG.n_resources in
    let horizon =
      Array.fold_left (fun acc g -> acc +. (Sim.run g).Sim.makespan) 0. graphs
    in
    let jobs =
      Array.mapi
        (fun i g ->
          Sched.job
            ~arrival:(Parqo.Rng.float rng (0.5 *. horizon))
            ~priority:(Parqo.Rng.int rng 3) ~job_id:i g)
        graphs
    in
    (* random speed steps — including dead windows — with every touched
       resource restored to nominal at the end, so no workload starves *)
    let touched = Array.make nr false in
    let steps =
      List.init
        (1 + Parqo.Rng.int rng 6)
        (fun _ ->
          let r = Parqo.Rng.int rng nr in
          touched.(r) <- true;
          {
            Sched.ev_at = Parqo.Rng.float rng horizon;
            ev_resource = r;
            ev_speed =
              (if Parqo.Rng.int rng 5 = 0 then 0.
               else 0.25 +. Parqo.Rng.float rng 1.75);
          })
    in
    let restores =
      List.init nr Fun.id
      |> List.filter (fun r -> touched.(r))
      |> List.map (fun r ->
             { Sched.ev_at = 2. *. horizon; ev_resource = r; ev_speed = 1. })
    in
    let events = steps @ restores in
    let offered = Array.make nr 0. in
    Array.iter
      (fun (j : Sched.job) ->
        Array.iter
          (fun (s : TG.stage) ->
            List.iter
              (fun (tk : TG.task) ->
                Array.iteri
                  (fun r d -> offered.(r) <- offered.(r) +. d)
                  tk.TG.demands)
              s.TG.tasks)
          j.Sched.graph.TG.stages)
      jobs;
    List.iter
      (fun policy ->
        let ctx what =
          Printf.sprintf "sched case %d %s: %s" case
            (Sched.policy_to_string policy) what
        in
        match Sched.run ~policy ~events jobs with
        | o ->
          Alcotest.(check bool) (ctx "makespan finite positive") true
            (Float.is_finite o.Sched.makespan && o.Sched.makespan > 0.);
          for r = 0 to nr - 1 do
            let tol = 1e-6 *. Float.max 1. offered.(r) in
            Alcotest.(check bool)
              (ctx (Printf.sprintf "busy conservation on r%d" r))
              true
              (Float.abs (o.Sched.busy.(r) -. offered.(r)) <= tol);
            Alcotest.(check bool)
              (ctx (Printf.sprintf "capacity envelope on r%d" r))
              true
              (o.Sched.busy.(r)
              <= capacity_integral events r o.Sched.makespan +. tol)
          done
        | exception e ->
          Alcotest.failf "sched case %d %s: raised %s" case
            (Sched.policy_to_string policy) (Printexc.to_string e))
      Sched.all_policies
  done

let suite =
  ( "recovery fuzz",
    [
      t "fuzz all policies" fuzz;
      t "fuzz server mode" server_fuzz;
      t "fuzz heterogeneous machines" hetero_machine_fuzz;
      t "fuzz scheduler machine events" hetero_scheduler_fuzz;
    ] )
