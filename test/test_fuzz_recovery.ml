(* Recovery fuzzing: random queries x random plans x random fault
   schedules (fail-stops, stragglers, full- and partial-loss outages)
   under every recovery policy.  The simulator must never raise, keep
   utilization at or below 1, and — when no re-plan splice rewrites the
   graph — never finish before the failure-free run.  All draws are
   seed-driven, so a failure reproduces from the case number. *)

module Sim = Parqo.Simulator
module F = Parqo.Fault
module R = Parqo.Recovery
module A = Parqo.Adaptive

let t name f = Alcotest.test_case name `Quick f

let policies =
  [
    ("retry", R.retry_task ());
    ("stage", R.Restart_stage);
    ("sync", R.Restart_from_sync);
    ("replan", R.replan ());
  ]

let is_replan = function R.Replan _ -> true | _ -> false

let random_schedule rng ~n_resources ~horizon =
  let fail = Parqo.Rng.float rng 0.6 in
  let base =
    F.default ~seed:(Parqo.Rng.int rng 10_000) ~straggler:(Parqo.Rng.bool rng)
      ~fault_rate:fail ()
  in
  let outages =
    if Parqo.Rng.bool rng then
      F.random_outages rng ~n_resources ~horizon
        ~rate:(0.5 +. Parqo.Rng.float rng 2.)
        ~mean_duration:(0.1 *. horizon)
    else []
  in
  (* mix in partial-loss outages so degradation paths are covered too *)
  let outages =
    List.map
      (fun (o : F.outage) ->
        if Parqo.Rng.bool rng then { o with F.factor = Parqo.Rng.float rng 0.9 }
        else o)
      outages
  in
  { base with F.outages }

let check_run ~case ~name ~clean ~spliced (o : Sim.outcome) =
  let ctx fmt = Printf.sprintf ("case %d %s: " ^^ fmt) case name in
  Alcotest.(check bool)
    (ctx "makespan finite positive")
    true
    (Float.is_finite o.Sim.makespan && o.Sim.makespan > 0.);
  Alcotest.(check bool)
    (ctx "utilization <= 1")
    true
    (Sim.utilization o <= 1. +. 1e-9);
  Alcotest.(check bool)
    (ctx "busy finite")
    true
    (Array.for_all Float.is_finite o.Sim.busy);
  (* a re-plan splice may legitimately beat the original plan; every
     other run only adds recovery work on top of the clean makespan.
     The tolerance is relative: recovery replays work at different
     times, so rounding differs from the clean run by a few ulps *)
  if not spliced then
    Alcotest.(check bool)
      (ctx "no faster than failure-free")
      true
      (o.Sim.makespan +. 1e-9 +. (1e-9 *. clean) >= clean)

let fuzz () =
  let rng = Parqo.Rng.create 20260806 in
  let cases = ref 0 in
  for case = 1 to 25 do
    let n = 3 + Parqo.Rng.int rng 3 in
    let env = Helpers.random_env rng ~n in
    let tree = Helpers.random_tree rng env in
    let clean = (A.simulate env tree).A.outcome in
    let n_resources =
      Parqo.Machine.n_resources env.Parqo.Env.machine
    in
    for _schedule = 1 to 2 do
      let faults =
        random_schedule rng ~n_resources ~horizon:clean.Sim.makespan
      in
      List.iter
        (fun (name, recovery) ->
          incr cases;
          match A.simulate ~faults ~recovery env tree with
          | r ->
            let o = r.A.outcome in
            check_run ~case ~name ~clean:clean.Sim.makespan
              ~spliced:(o.Sim.n_replans > 0) o;
            (* the re-optimizations are domain-parallel but merge
               deterministically: 4 domains replay the run bit-for-bit *)
            if is_replan recovery && o.Sim.n_replans > 0 then begin
              let d4 = A.simulate ~faults ~recovery ~domains:4 env tree in
              Alcotest.(check int64)
                (Printf.sprintf "case %d: domains 1 vs 4 makespan bits" case)
                (Int64.bits_of_float o.Sim.makespan)
                (Int64.bits_of_float d4.A.outcome.Sim.makespan)
            end
          | exception e ->
            Alcotest.failf "case %d %s: raised %s" case name
              (Printexc.to_string e))
        policies
    done
  done;
  Alcotest.(check bool) "at least 200 cases" true (!cases >= 200)

let suite = ("recovery fuzz", [ t "fuzz all policies" fuzz ])
