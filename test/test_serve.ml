(* The serving layer: dispositions partition every trace, admission
   control holds the in-flight cap, the plan cache is invisible except
   in speed (bit-identical plans), and an epoch bump makes post-bump
   lookups bit-identical to a fresh optimization against the new
   catalog. *)

module Server = Parqo_serve.Server
module Chaos = Parqo_serve.Chaos
module Cm = Parqo.Costmodel
module B = Parqo.Budget
module W = Parqo.Workloads

let t name f = Alcotest.test_case name `Quick f

let bits = Int64.bits_of_float

(* a small pool so each test stays fast; the capped budget bounds each
   real optimization *)
let small_pool ?(base_card = 1000.) () =
  W.serving_pool ~n_tables:4 ~max_relations:3 ~pool:8 ~base_card ~seed:5 ()

let machine = Parqo.Machine.shared_nothing ~nodes:4 ()

let fast_config =
  {
    Server.default_config with
    Server.budget = B.expansions 5_000;
    default_deadline = Some 10.;
    queue_cap = 64;
  }

let trace ?(n = 40) ?(rate = 100.) ?deadline pool =
  let rng = Parqo.Rng.create 13 in
  let arrivals = W.arrivals rng ~process:(W.Poisson rate) ~n in
  Server.requests rng ~pool ~arrivals ?deadline ()

let check_partition msg (r : Server.run_result) =
  let s = r.Server.stats in
  Alcotest.(check int)
    (msg ^ ": dispositions partition")
    s.Server.n_requests
    (s.Server.planned + s.Server.degraded + s.Server.rejected);
  Array.iter
    (fun (c : Server.completion) ->
      match (c.Server.disposition, c.Server.plan) with
      | (Server.Planned | Server.Degraded _), Some _ -> ()
      | Server.Rejected _, None -> ()
      | Server.Rejected _, Some _ ->
        Alcotest.failf "%s: rejected request %d carries a plan" msg
          c.Server.request.Server.id
      | _, None ->
        Alcotest.failf "%s: admitted request %d has no plan" msg
          c.Server.request.Server.id)
    r.Server.completions

let basics () =
  let catalog, pool = small_pool () in
  let server = Server.create ~config:fast_config ~machine ~catalog () in
  let r = Server.run server (trace pool) in
  check_partition "basics" r;
  let s = r.Server.stats in
  Alcotest.(check int) "nothing rejected at this load" 0 s.Server.rejected;
  Alcotest.(check bool) "pool repeats hit the cache" true
    (s.Server.cache_hits > 0);
  Alcotest.(check bool) "in-flight bounded" true
    (s.Server.max_in_flight <= fast_config.Server.queue_cap);
  Alcotest.(check bool) "throughput positive" true (s.Server.throughput_qps > 0.)

(* the cache is semantically invisible: a second pass over the same
   trace is all hits, with bit-identical plans *)
let warm_pass_identical () =
  let catalog, pool = small_pool () in
  let server = Server.create ~config:fast_config ~machine ~catalog () in
  let reqs = trace pool in
  let cold = Server.run server reqs in
  let warm = Server.run server reqs in
  check_partition "warm" warm;
  Array.iteri
    (fun i (c : Server.completion) ->
      let w = warm.Server.completions.(i) in
      Alcotest.(check bool) "warm pass is all cache hits" true w.Server.cache_hit;
      match (c.Server.plan, w.Server.plan) with
      | Some a, Some b ->
        Alcotest.(check string) "same tree"
          (Parqo.Join_tree.to_string a.Cm.tree)
          (Parqo.Join_tree.to_string b.Cm.tree);
        Alcotest.(check int64) "same response time bits"
          (bits a.Cm.response_time) (bits b.Cm.response_time);
        Alcotest.(check int64) "same work bits" (bits a.Cm.work) (bits b.Cm.work)
      | _ -> Alcotest.fail "missing plan")
    cold.Server.completions

(* property: after a catalog update (epoch bump), every lookup is
   bit-identical to a fresh optimization against the new catalog — no
   stale plan survives the bump *)
let epoch_bump_invalidates () =
  let catalog_a, pool = small_pool () in
  let catalog_b, pool_b = small_pool ~base_card:200. () in
  (* same seed, different statistics: the pools are the same queries *)
  Alcotest.(check int) "same pool" (Array.length pool) (Array.length pool_b);
  let reqs = trace pool in
  let server = Server.create ~config:fast_config ~machine ~catalog:catalog_a () in
  ignore (Server.run server reqs);
  let epoch0 = Server.epoch server in
  Server.update_catalog server catalog_b;
  Alcotest.(check int) "epoch bumped" (epoch0 + 1) (Server.epoch server);
  let after = Server.run server reqs in
  let fresh_server =
    Server.create ~config:fast_config ~machine ~catalog:catalog_b ()
  in
  let fresh = Server.run fresh_server reqs in
  check_partition "post-bump" after;
  Array.iteri
    (fun i (c : Server.completion) ->
      let f = fresh.Server.completions.(i) in
      match (c.Server.plan, f.Server.plan) with
      | Some a, Some b ->
        Alcotest.(check string) "post-bump tree = fresh tree"
          (Parqo.Join_tree.to_string b.Cm.tree)
          (Parqo.Join_tree.to_string a.Cm.tree);
        Alcotest.(check int64) "post-bump rt bits = fresh rt bits"
          (bits b.Cm.response_time) (bits a.Cm.response_time);
        Alcotest.(check int64) "post-bump work bits = fresh work bits"
          (bits b.Cm.work) (bits a.Cm.work)
      | _ -> Alcotest.fail "missing plan")
    after.Server.completions

(* a hopeless deadline degrades to the greedy plan — never an error *)
let hopeless_deadline_degrades () =
  let catalog, pool = small_pool () in
  let server = Server.create ~config:fast_config ~machine ~catalog () in
  let r = Server.run server (trace ~deadline:1e-9 pool) in
  check_partition "hopeless deadline" r;
  Alcotest.(check int) "nothing planned in time" 0 r.Server.stats.Server.planned;
  Array.iter
    (fun (c : Server.completion) ->
      match c.Server.disposition with
      | Server.Degraded _ | Server.Rejected _ -> ()
      | Server.Planned ->
        Alcotest.failf "request %d planned under a 1ns deadline"
          c.Server.request.Server.id)
    r.Server.completions

(* heavy poisoning exercises retry-with-backoff; the stream still
   terminates with every request accounted for *)
let chaos_poison_retries () =
  let catalog, pool = small_pool () in
  let config =
    {
      fast_config with
      Server.chaos =
        { (Chaos.default ~seed:2 ()) with Chaos.poison_rate = 0.6 };
    }
  in
  let server = Server.create ~config ~machine ~catalog () in
  let r = Server.run server (trace pool) in
  check_partition "poisoned" r;
  Alcotest.(check bool) "retries happened" true (r.Server.stats.Server.retries > 0)

(* chaos epoch bumps mid-stream: requests keep completing and the bump
   count is reported *)
let chaos_epoch_bumps () =
  let catalog, pool = small_pool () in
  let config =
    {
      fast_config with
      Server.chaos = { Chaos.none with Chaos.epoch_bump_every = 10 };
    }
  in
  let server = Server.create ~config ~machine ~catalog () in
  let r = Server.run server (trace ~n:40 pool) in
  check_partition "epoch chaos" r;
  Alcotest.(check bool) "bumps recorded" true
    (r.Server.stats.Server.epoch_bumps > 0);
  Alcotest.(check bool) "server epoch advanced" true (Server.epoch server > 0)

(* a tiny queue under a burst sheds load and the cap holds exactly *)
let burst_sheds () =
  let catalog, pool = small_pool () in
  let config = { fast_config with Server.queue_cap = 2; workers = 1 } in
  let server = Server.create ~config ~machine ~catalog () in
  let rng = Parqo.Rng.create 17 in
  let arrivals =
    W.arrivals rng ~process:(W.Burst { size = 20; period = 5. }) ~n:20
  in
  let reqs = Server.requests rng ~pool ~arrivals ~deadline:10. () in
  let r = Server.run server reqs in
  check_partition "burst" r;
  Alcotest.(check bool) "load was shed" true (r.Server.stats.Server.rejected > 0);
  Alcotest.(check bool) "cap held" true (r.Server.stats.Server.max_in_flight <= 2)

(* chaos draws are pure in (seed, request, attempt) *)
let chaos_deterministic () =
  let c = Chaos.default ~seed:9 () in
  for request = 0 to 50 do
    for attempt = 1 to 3 do
      let a = Chaos.draw c ~request ~attempt in
      let b = Chaos.draw c ~request ~attempt in
      Alcotest.(check bool) "replayed draw identical" true (a = b);
      if attempt > 1 then
        Alcotest.(check bool) "bumps only on first attempt" false
          a.Chaos.bump_epoch
    done
  done

let config_validation () =
  let catalog, _ = small_pool () in
  let bad = { Server.default_config with Server.queue_cap = 0 } in
  (match Server.create ~config:bad ~machine ~catalog () with
  | _ -> Alcotest.fail "invalid config accepted"
  | exception Parqo.Parqo_error.Error e ->
    Alcotest.(check string) "subsystem" "serve" e.Parqo.Parqo_error.subsystem);
  let bad_chaos =
    {
      Server.default_config with
      Server.chaos = { Chaos.none with Chaos.poison_rate = 1. };
    }
  in
  match Server.create ~config:bad_chaos ~machine ~catalog () with
  | _ -> Alcotest.fail "invalid chaos accepted"
  | exception Parqo.Parqo_error.Error e ->
    Alcotest.(check bool) "mentions poison" true
      (let needle = "poison_rate" and hay = e.Parqo.Parqo_error.message in
       let n = String.length needle and h = String.length hay in
       let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
       go 0)

(* regression: a machine-topology change must bump the epoch — a
   degraded-machine request never gets a pre-degrade cached plan
   (epochs used to bump on catalog changes only) *)
let machine_update_invalidates () =
  let catalog, pool = small_pool () in
  let reqs = trace pool in
  let server = Server.create ~config:fast_config ~machine ~catalog () in
  ignore (Server.run server reqs);
  let epoch0 = Server.epoch server in
  (* a structurally identical machine is not a topology change *)
  Server.update_machine server (Parqo.Machine.shared_nothing ~nodes:4 ());
  Alcotest.(check int) "no-op update leaves the epoch" epoch0
    (Server.epoch server);
  let degraded = Parqo.Machine.degrade machine ~down:[ 1; 5 ] in
  Server.update_machine server degraded;
  Alcotest.(check int) "degrade bumps the epoch" (epoch0 + 1)
    (Server.epoch server);
  let after = Server.run server reqs in
  check_partition "post-degrade" after;
  let fresh_server =
    Server.create ~config:fast_config ~machine:degraded ~catalog ()
  in
  let fresh = Server.run fresh_server reqs in
  Array.iteri
    (fun i (c : Server.completion) ->
      let f = fresh.Server.completions.(i) in
      match (c.Server.plan, f.Server.plan) with
      | Some a, Some b ->
        Alcotest.(check string) "post-degrade tree = fresh degraded tree"
          (Parqo.Join_tree.to_string b.Cm.tree)
          (Parqo.Join_tree.to_string a.Cm.tree);
        Alcotest.(check int64) "post-degrade rt bits"
          (bits b.Cm.response_time) (bits a.Cm.response_time);
        Alcotest.(check int64) "post-degrade work bits"
          (bits b.Cm.work) (bits a.Cm.work)
      | _ -> Alcotest.fail "missing plan")
    after.Server.completions

(* speed changes are topology changes too: a rescale or a grow must bump
   the epoch, and post-change plans are bit-identical to a fresh server
   built on the changed machine *)
let machine_speed_update_invalidates () =
  let catalog, pool = small_pool () in
  let reqs = trace ~n:16 pool in
  let check_against_fresh msg changed (after : Server.run_result) =
    let fresh_server =
      Server.create ~config:fast_config ~machine:changed ~catalog ()
    in
    let fresh = Server.run fresh_server reqs in
    Array.iteri
      (fun i (c : Server.completion) ->
        let f = fresh.Server.completions.(i) in
        match (c.Server.plan, f.Server.plan) with
        | Some a, Some b ->
          Alcotest.(check string) (msg ^ ": tree = fresh tree")
            (Parqo.Join_tree.to_string b.Cm.tree)
            (Parqo.Join_tree.to_string a.Cm.tree);
          Alcotest.(check int64) (msg ^ ": rt bits")
            (bits b.Cm.response_time) (bits a.Cm.response_time)
        | _ -> Alcotest.fail "missing plan")
      after.Server.completions
  in
  let server = Server.create ~config:fast_config ~machine ~catalog () in
  ignore (Server.run server reqs);
  let epoch0 = Server.epoch server in
  (* an all-nominal rescale leaves every speed in place: no bump *)
  let nominal =
    Parqo.Machine.rescale machine
      ~speeds:
        (List.init (Parqo.Machine.n_resources machine) (fun id -> (id, 1.0)))
  in
  Server.update_machine server nominal;
  Alcotest.(check int) "all-nominal rescale is a no-op" epoch0
    (Server.epoch server);
  (* a brownout rescale is a machine change *)
  let slow = Parqo.Machine.rescale machine ~speeds:[ (0, 0.25) ] in
  Server.update_machine server slow;
  Alcotest.(check int) "rescale bumps the epoch" (epoch0 + 1)
    (Server.epoch server);
  check_against_fresh "post-rescale" slow (Server.run server reqs);
  (* growth is a machine change too *)
  let grown =
    Parqo.Machine.grow ~speed:2. slow [ (Parqo.Resource.Cpu, "cpu-x", 0) ]
  in
  Server.update_machine server grown;
  Alcotest.(check int) "grow bumps the epoch" (epoch0 + 2)
    (Server.epoch server);
  check_against_fresh "post-grow" grown (Server.run server reqs)

(* chaos machine events drive the update_machine path mid-stream; the
   draws are pure, fire only on first attempts, and leave the poison/slow
   stream of the same seed untouched *)
let chaos_machine_events () =
  let catalog, pool = small_pool () in
  let c = { Chaos.none with Chaos.seed = 4; machine_event_rate = 0.9 } in
  for request = 0 to 30 do
    let a = Chaos.machine_draw c ~request ~attempt:1 ~n_resources:9 in
    let b = Chaos.machine_draw c ~request ~attempt:1 ~n_resources:9 in
    Alcotest.(check bool) "machine draw pure" true (a = b);
    Alcotest.(check bool) "only on the first attempt" true
      (Chaos.machine_draw c ~request ~attempt:2 ~n_resources:9 = None)
  done;
  (* enabling machine events must not disturb the poison/slow stream *)
  let loud =
    { (Chaos.default ~seed:4 ()) with Chaos.machine_event_rate = 0.9 }
  in
  let quiet = { loud with Chaos.machine_event_rate = 0. } in
  for request = 0 to 30 do
    Alcotest.(check bool) "poison/slow trace preserved" true
      (Chaos.draw loud ~request ~attempt:1 = Chaos.draw quiet ~request ~attempt:1)
  done;
  (match Chaos.validate { c with Chaos.machine_event_rate = 1.5 } with
  | Ok () -> Alcotest.fail "invalid machine_event_rate accepted"
  | Error _ -> ());
  let config = { fast_config with Server.chaos = c } in
  let server = Server.create ~config ~machine ~catalog () in
  let r = Server.run server (trace ~n:40 pool) in
  check_partition "machine chaos" r;
  Alcotest.(check bool) "machine events applied" true
    (r.Server.stats.Server.machine_events > 0);
  Alcotest.(check bool) "epoch advanced with the machine" true
    (Server.epoch server > 0)

(* regression: one persistent pool serves every request — warm requests
   spawn no domains (spawning happens at pool creation, once), and the
   pooled plans are bit-identical to pool-less serving *)
let shared_pool_no_respawn () =
  let catalog, pool = small_pool () in
  let reqs = trace ~n:12 pool in
  let baseline =
    let server = Server.create ~config:fast_config ~machine ~catalog () in
    Server.run server reqs
  in
  Parqo.Domain_pool.with_pool ~oversubscribe:true ~domains:2 (fun dp ->
      let spawned_at_create = (Parqo.Domain_pool.stats dp).Parqo.Domain_pool.spawned in
      Alcotest.(check int) "pool spawns at create" 1 spawned_at_create;
      let server = Server.create ~config:fast_config ~pool:dp ~machine ~catalog () in
      let before = Parqo.Domain_pool.stats dp in
      let r = Server.run server reqs in
      let diff =
        Parqo.Domain_pool.diff_stats before (Parqo.Domain_pool.stats dp)
      in
      (* the Search_stats.spawned of every warm request is this diff:
         zero — requests reuse the pool's workers *)
      Alcotest.(check int) "warm requests spawn nothing" 0
        diff.Parqo.Domain_pool.spawned;
      Alcotest.(check bool) "the pool actually ran regions" true
        (diff.Parqo.Domain_pool.parallel_runs + diff.Parqo.Domain_pool.sequential_runs > 0);
      check_partition "pooled" r;
      Array.iteri
        (fun i (c : Server.completion) ->
          let b = baseline.Server.completions.(i) in
          match (c.Server.plan, b.Server.plan) with
          | Some p, Some q ->
            Alcotest.(check string) "pooled tree = pool-less tree"
              (Parqo.Join_tree.to_string q.Cm.tree)
              (Parqo.Join_tree.to_string p.Cm.tree);
            Alcotest.(check int64) "pooled rt bits"
              (bits q.Cm.response_time) (bits p.Cm.response_time)
          | _ -> Alcotest.fail "missing plan")
        r.Server.completions)

(* property (regression): burst streams emit tied arrivals; serving must
   be reproducible however the caller ordered the trace — ties break by
   request id *)
let burst_tie_order_deterministic () =
  let catalog, pool = small_pool () in
  let rng = Parqo.Rng.create 23 in
  let arrivals =
    W.arrivals rng ~process:(W.Burst { size = 8; period = 0.5 }) ~n:24
  in
  let reqs = Server.requests rng ~pool ~arrivals ~deadline:10. () in
  (* service times are real measured optimizer seconds, so latencies are
     not replayable — the property is that the served order and every
     order-dependent outcome (cache warm-up pattern, dispositions) are *)
  let serve order =
    let server = Server.create ~config:fast_config ~machine ~catalog () in
    let r = Server.run server order in
    Array.map
      (fun (c : Server.completion) ->
        ( ( c.Server.request.Server.id,
            Server.disposition_label c.Server.disposition ),
          (c.Server.cache_hit, c.Server.fingerprint) ))
      r.Server.completions
  in
  let reference = serve reqs in
  for shuffle = 1 to 4 do
    let shuffled = Array.copy reqs in
    Parqo.Rng.shuffle rng shuffled;
    Alcotest.(check (array (pair (pair int string) (pair bool string))))
      (Printf.sprintf "shuffle %d serves identically" shuffle)
      reference (serve shuffled)
  done

let suite =
  ( "serve",
    [
      t "basics" basics;
      t "warm pass is all hits, bit-identical" warm_pass_identical;
      t "epoch bump = fresh optimization" epoch_bump_invalidates;
      t "machine change bumps the epoch" machine_update_invalidates;
      t "speed change bumps the epoch" machine_speed_update_invalidates;
      t "chaos machine events" chaos_machine_events;
      t "shared pool: warm requests spawn nothing" shared_pool_no_respawn;
      t "burst ties serve deterministically" burst_tie_order_deterministic;
      t "hopeless deadline degrades" hopeless_deadline_degrades;
      t "poisoned requests retry" chaos_poison_retries;
      t "chaos epoch bumps" chaos_epoch_bumps;
      t "burst sheds load, cap holds" burst_sheds;
      t "chaos draws deterministic" chaos_deterministic;
      t "config validation" config_validation;
    ] )
