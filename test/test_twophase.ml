module TP = Parqo.Twophase
module Cm = Parqo.Costmodel
module G = Parqo.Query_gen

let t name f = Alcotest.test_case name `Quick f

let env_of ?(nodes = 4) shape n =
  let catalog, query = G.generate (G.default_spec shape n) in
  Parqo.Env.create ~machine:(Parqo.Machine.shared_nothing ~nodes ()) ~catalog
    ~query ()

let config env =
  { (Parqo.Space.parallel_config env.Parqo.Env.machine) with
    Parqo.Space.clone_degrees = [ 1; 2; 4 ] }

let basics () =
  let env = env_of G.Chain 4 in
  let r = TP.optimize ~config:(config env) env in
  match (r.TP.best, r.TP.sequential) with
  | Some best, Some seq ->
    (* phase 2 only re-annotates: same join order and methods *)
    let strip tree =
      Parqo.Join_tree.fold
        ~access:(fun a -> [ `Rel a.Parqo.Join_tree.rel ])
        ~join:(fun j l r -> l @ r @ [ `M j.Parqo.Join_tree.method_ ])
        tree
    in
    Alcotest.(check bool) "same skeleton" true
      (strip best.Cm.tree = strip seq.Cm.tree);
    (* parallelization cannot make it slower than the sequential plan *)
    Alcotest.(check bool) "no worse than sequential" true
      (best.Cm.response_time <= seq.Cm.response_time +. 1e-6);
    Alcotest.(check bool) "phase 2 searched" true (r.TP.evaluated > 1)
  | _ -> Alcotest.fail "missing plan"

let never_beats_one_phase () =
  (* one-phase searches a superset: over several shapes the two-phase
     answer is never strictly better than the one-phase answer *)
  List.iter
    (fun shape ->
      let env = env_of shape 4 in
      let config = config env in
      let two = TP.optimize ~config env in
      let metric = Parqo.Optimizer.default_metric env in
      let one = Parqo.Podp.optimize ~config ~metric ~max_cover:32 env in
      match (two.TP.best, one.Parqo.Podp.best) with
      | Some t2, Some o1 ->
        Alcotest.(check bool)
          (G.shape_to_string shape ^ ": one-phase at least as good")
          true
          (o1.Cm.response_time <= t2.Cm.response_time +. 1e-6)
      | _ -> Alcotest.fail "missing plan")
    [ G.Chain; G.Star; G.Clique ]

let coordinate_descent_path () =
  (* more joins than the exhaustive cutoff exercises coordinate descent *)
  let env = env_of G.Chain 8 in
  let r = TP.optimize ~config:(config env) env in
  match (r.TP.best, r.TP.sequential) with
  | Some best, Some seq ->
    Alcotest.(check bool) "descent improved the plan" true
      (best.Cm.response_time <= seq.Cm.response_time +. 1e-6)
  | _ -> Alcotest.fail "missing plan"

let singleton () =
  let env = env_of G.Chain 1 in
  Alcotest.(check bool) "single relation handled" true
    ((TP.optimize env).TP.best <> None)

(* a 1 ms deadline on clique-5 must stop the phase-2 enumeration within
   that slot's costing pass — promptly, with the phase-1 plan as the
   guaranteed fallback — not after the full cross product (which takes
   seconds at these clone degrees) *)
let deadline_stops_enumeration () =
  let env = env_of G.Clique 5 in
  let t0 = Unix.gettimeofday () in
  let r =
    TP.optimize ~config:(config env)
      ~budget:(Parqo.Budget.deadline (t0 +. 0.001))
      env
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "gave up" true r.TP.gave_up;
  Alcotest.(check bool) "still returned a plan" true (r.TP.best <> None);
  (* generous margin over 1 ms: one costing pass, not the cross product *)
  Alcotest.(check bool)
    (Printf.sprintf "prompt (%.3fs)" elapsed)
    true (elapsed < 2.)

let unbudgeted_never_gives_up () =
  let env = env_of G.Chain 4 in
  Alcotest.(check bool) "no budget, no give-up" false
    (TP.optimize ~config:(config env) env).TP.gave_up

let suite =
  ( "twophase",
    [
      t "basics" basics;
      t "never beats one-phase" never_beats_one_phase;
      t "coordinate descent" coordinate_descent_path;
      t "singleton" singleton;
      t "deadline stops enumeration" deadline_stops_enumeration;
      t "unbudgeted never gives up" unbudgeted_never_gives_up;
    ] )
