(* The persistent worker pool under the PODP level loop: workers are
   spawned once, parked between regions, and claim chunked index ranges.
   Everything here runs oversubscribed — the pool clamps to the core
   count by default, and CI may well have one core, so forcing real
   spawned domains is the only way to exercise cross-domain execution. *)

module Pool = Parqo.Domain_pool

let t name f = Alcotest.test_case name `Quick f

(* every index of every region is executed exactly once, across many
   region shapes (tasks above, below, and equal to the width) *)
let exactly_once () =
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      List.iter
        (fun tasks ->
          let counts = Array.init (max tasks 1) (fun _ -> Atomic.make 0) in
          ignore
            (Pool.run_ranged pool ~tasks (fun ~worker:_ ~lo ~hi ->
                 for i = lo to hi - 1 do
                   Atomic.incr counts.(i)
                 done));
          for i = 0 to tasks - 1 do
            Alcotest.(check int)
              (Printf.sprintf "tasks=%d index %d runs once" tasks i)
              1
              (Atomic.get counts.(i))
          done)
        [ 0; 1; 2; 3; 4; 5; 17; 100; 1000 ])

(* ranges partition [0, tasks): contiguous, disjoint, in-bounds *)
let ranges_partition () =
  Pool.with_pool ~oversubscribe:true ~domains:3 (fun pool ->
      let tasks = 500 in
      let owner = Array.make tasks (-1) in
      let m = Mutex.create () in
      ignore
        (Pool.run_ranged pool ~tasks (fun ~worker ~lo ~hi ->
             Alcotest.(check bool) "lo < hi" true (lo < hi);
             Alcotest.(check bool) "bounds" true (lo >= 0 && hi <= tasks);
             Mutex.lock m;
             for i = lo to hi - 1 do
               Alcotest.(check int)
                 (Printf.sprintf "index %d unclaimed" i)
                 (-1) owner.(i);
               owner.(i) <- worker
             done;
             Mutex.unlock m));
      Array.iteri
        (fun i w ->
          Alcotest.(check bool)
            (Printf.sprintf "index %d claimed by a lane" i)
            true
            (w >= 0 && w < Pool.width pool))
        owner)

(* one pool serves many regions: the workers are spawned once and parked
   between runs, not respawned *)
let reuse_across_runs () =
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      let total = Atomic.make 0 in
      for round = 1 to 10 do
        Pool.run pool ~tasks:(10 * round) (fun _ ->
            Atomic.incr total)
      done;
      Alcotest.(check int) "all tasks of all rounds ran" 550 (Atomic.get total);
      let s = Pool.stats pool in
      Alcotest.(check int) "spawned once, not per region" 3 s.Pool.spawned;
      Alcotest.(check int) "ten parallel regions" 10 s.Pool.parallel_runs;
      Alcotest.(check int) "workers parked after each region" 30 s.Pool.parks)

(* a raising task aborts the region, reraises on the caller, and leaves
   the pool usable for the next region — no worker is lost *)
let exception_safe () =
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      (try
         Pool.run pool ~tasks:100 (fun i -> if i = 57 then failwith "boom");
         Alcotest.fail "exception was swallowed"
       with Failure msg -> Alcotest.(check string) "reraised" "boom" msg);
      (* the same pool still runs a full region afterwards *)
      let hits = Array.init 64 (fun _ -> Atomic.make 0) in
      Pool.run pool ~tasks:64 (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i c ->
          Alcotest.(check int) (Printf.sprintf "post-failure index %d" i) 1
            (Atomic.get c))
        hits)

(* with_pool shuts the workers down even when the body raises *)
let with_pool_bracket () =
  let escaped = ref None in
  (try
     Pool.with_pool ~oversubscribe:true ~domains:3 (fun pool ->
         escaped := Some pool;
         failwith "body")
   with Failure _ -> ());
  match !escaped with
  | None -> Alcotest.fail "body never ran"
  | Some pool ->
    (* double shutdown is idempotent; a shut-down pool rejects regions *)
    Pool.shutdown pool;
    Alcotest.check_raises "rejects after shutdown"
      (Invalid_argument "Domain_pool.run_ranged: pool is shut down")
      (fun () -> Pool.run pool ~tasks:4 (fun _ -> ()))

(* clamping: requested width never exceeds the core count by default,
   and the sequential fast path reports one participant *)
let clamps_and_fast_paths () =
  Pool.with_pool ~domains:64 (fun pool ->
      Alcotest.(check int) "requested preserved" 64 (Pool.requested pool);
      Alcotest.(check bool) "clamped to cores" true
        (Pool.width pool <= Domain.recommended_domain_count ()));
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      (* tasks <= 1 must not involve any worker *)
      let ran = ref [] in
      let used =
        Pool.run_ranged pool ~tasks:1 (fun ~worker ~lo ~hi ->
            ran := (worker, lo, hi) :: !ran)
      in
      Alcotest.(check int) "one participant" 1 used;
      Alcotest.(check (list (triple int int int))) "caller lane only"
        [ (0, 0, 1) ] !ran;
      let s = Pool.stats pool in
      Alcotest.(check int) "fast path counted sequential" 1
        s.Pool.sequential_runs);
  Alcotest.check_raises "domains < 1 rejected"
    (Invalid_argument "Domain_pool.create: domains < 1") (fun () ->
      ignore (Pool.create ~domains:0 ()))

(* participants never exceed the width, and with enough tasks every lane
   of an oversubscribed pool eventually participates in some region *)
let participants_bounded () =
  Pool.with_pool ~oversubscribe:true ~domains:3 (fun pool ->
      for _ = 1 to 5 do
        let used = Pool.run_ranged pool ~tasks:200 (fun ~worker:_ ~lo ~hi ->
            (* a little work so workers get a chance to claim *)
            let s = ref 0 in
            for i = lo to hi - 1 do s := !s + i done;
            Sys.opaque_identity !s |> ignore)
        in
        Alcotest.(check bool) "1 <= used <= width" true
          (used >= 1 && used <= Pool.width pool)
      done)

let suite =
  ( "domain_pool",
    [
      t "every index exactly once" exactly_once;
      t "chunks partition the index space" ranges_partition;
      t "pool reused across regions" reuse_across_runs;
      t "worker exception reraised, pool survives" exception_safe;
      t "with_pool shuts down on raise" with_pool_bracket;
      t "clamping and sequential fast path" clamps_and_fast_paths;
      t "participants bounded by width" participants_bounded;
    ] )
