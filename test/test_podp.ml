(* Figure 2: partial-order DP over left-deep trees. *)

module Podp = Parqo.Podp
module Dp = Parqo.Dp
module Brute = Parqo.Brute
module Mt = Parqo.Metric
module Cm = Parqo.Costmodel
module S = Parqo.Space
module G = Parqo.Query_gen
module Stats = Parqo.Search_stats

let t name f = Alcotest.test_case name `Quick f

let env_of ?(nodes = 4) shape n =
  let catalog, query = G.generate (G.default_spec shape n) in
  let machine = Parqo.Machine.shared_nothing ~nodes () in
  Parqo.Env.create ~machine ~catalog ~query ()

let metric_for env =
  Mt.with_ordering
    (Mt.descriptor env.Parqo.Env.machine Parqo.Machine.Single)

let finds_plans () =
  List.iter
    (fun shape ->
      let env = env_of shape 4 in
      let r = Podp.optimize ~metric:(metric_for env) env in
      match r.Podp.best with
      | Some e ->
        Alcotest.(check bool) "left-deep" true (Parqo.Join_tree.is_left_deep e.Cm.tree)
      | None -> Alcotest.fail "no plan")
    [ G.Chain; G.Star; G.Cycle; G.Clique ]

let final_cover_incomparable () =
  let env = env_of G.Chain 4 in
  let metric = metric_for env in
  let r =
    Podp.optimize ~config:(S.parallel_config env.Parqo.Env.machine) ~metric env
  in
  let cover = r.Podp.cover in
  Alcotest.(check bool) "non-empty cover" true (cover <> []);
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a != b then
            Alcotest.(check bool) "pairwise incomparable" false
              (Mt.dominates metric a b))
        cover)
    cover

(* po-DP at least matches DP on response time: it retains strictly more
   plans per subset, so its final answer can only be better or equal *)
let no_worse_than_rt_dp () =
  let rng = Parqo.Rng.create 8 in
  for _ = 1 to 8 do
    let env = Helpers.random_env rng ~n:4 in
    let config = { S.default_config with S.clone_degrees = [ 1; 2 ] } in
    let objective (e : Cm.eval) = e.Cm.response_time in
    let dp = Dp.optimize ~config ~objective env in
    let po = Podp.optimize ~config ~metric:(metric_for env) env in
    match (dp.Dp.best, po.Podp.best) with
    | Some d, Some p ->
      Alcotest.(check bool) "po-DP <= naive RT DP" true
        (p.Cm.response_time <= d.Cm.response_time +. 1e-6)
    | _ -> Alcotest.fail "missing plan"
  done

(* ground truth: po-DP with the full descriptor metric finds the true
   response-time optimum (delta = 0 makes the metric provably sound) *)
let optimal_vs_brute_delta0 () =
  let rng = Parqo.Rng.create 9 in
  let count = ref 0 in
  for _ = 1 to 8 do
    let catalog, query = Parqo.Query_gen.random rng ~n:3 () in
    let params = { Parqo.Machine.default_params with pipeline_delta_k = 0. } in
    let machine = Parqo.Machine.shared_nothing ~params ~nodes:3 () in
    let env = Parqo.Env.create ~machine ~catalog ~query () in
    let config = { S.default_config with S.clone_degrees = [ 1; 2 ] } in
    let metric =
      Mt.with_ordering (Mt.descriptor machine Parqo.Machine.Per_resource)
    in
    let po = Podp.optimize ~config ~metric env in
    let brute =
      Brute.leftdeep ~config
        ~objective:(fun (e : Cm.eval) -> e.Cm.response_time)
        env
    in
    match (po.Podp.best, brute.Brute.best) with
    | Some p, Some b ->
      if Helpers.feq ~eps:1e-6 p.Cm.response_time b.Cm.response_time then
        incr count
      else
        Alcotest.failf "po-DP %.4f vs brute %.4f" p.Cm.response_time
          b.Cm.response_time
    | _ -> Alcotest.fail "missing plan"
  done;
  Alcotest.(check int) "all optimal" 8 !count

(* with the delta penalty on, the metric is heuristic; measure that it
   still matches brute force on nearly all random instances *)
let near_optimal_with_delta () =
  let rng = Parqo.Rng.create 10 in
  let total = 10 and hits = ref 0 in
  for _ = 1 to total do
    let env = Helpers.random_env rng ~n:3 in
    let config = { S.default_config with S.clone_degrees = [ 1; 2 ] } in
    let metric =
      Mt.with_ordering
        (Mt.descriptor env.Parqo.Env.machine Parqo.Machine.Per_resource)
    in
    let po = Podp.optimize ~config ~metric env in
    let brute =
      Brute.leftdeep ~config
        ~objective:(fun (e : Cm.eval) -> e.Cm.response_time)
        env
    in
    match (po.Podp.best, brute.Brute.best) with
    | Some p, Some b ->
      if p.Cm.response_time <= b.Cm.response_time *. 1.02 +. 1e-9 then incr hits
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d within 2%% of optimal" !hits total)
    true
    (!hits >= total - 1)

(* work cap prunes the search; with cap = optimal work the result matches
   the work optimizer's response time *)
let work_cap_prunes () =
  let env = env_of G.Chain 4 in
  let config = S.parallel_config env.Parqo.Env.machine in
  let metric = metric_for env in
  let wopt = (Dp.optimize ~config env).Dp.best in
  match wopt with
  | None -> Alcotest.fail "no work optimum"
  | Some w ->
    let free = Podp.optimize ~config ~metric env in
    let capped = Podp.optimize ~config ~metric ~work_cap:w.Cm.work env in
    (match (free.Podp.best, capped.Podp.best) with
    | Some f, Some c ->
      Alcotest.(check bool) "cap respected" true (c.Cm.work <= w.Cm.work +. 1e-6);
      Alcotest.(check bool) "free at least as fast" true
        (f.Cm.response_time <= c.Cm.response_time +. 1e-6)
    | _ -> Alcotest.fail "missing plan");
    Alcotest.(check bool) "cap shrinks generated plans" true
      (capped.Podp.stats.Stats.generated <= free.Podp.stats.Stats.generated)

(* Theorem 3 bounds the expected cover by 2^l only under independent
   dimensions, an assumption the paper itself calls "likely to be
   optimistic": a plan's time and work dimensions are anti-correlated
   (that tradeoff is the whole point), so measured covers exceed 2^l.
   Assert the honest claim — covers stay bounded and small relative to
   the number of plans per subset — and that a beam cap enforces 2^l. *)
let cover_sizes_reasonable () =
  let env = env_of G.Clique 5 in
  let metric = Mt.descriptor env.Parqo.Env.machine Parqo.Machine.Single in
  let r = Podp.optimize ~config:S.default_config ~metric env in
  Alcotest.(check bool)
    (Printf.sprintf "cover max %d stays bounded" r.Podp.stats.Stats.cover_max)
    true
    (r.Podp.stats.Stats.cover_max <= 128);
  let beamed = Podp.optimize ~config:S.default_config ~metric ~max_cover:16 env in
  List.iter
    (fun (c : Cm.eval) -> ignore c)
    beamed.Podp.cover;
  Alcotest.(check bool) "beamed cover obeys cap" true
    (List.length beamed.Podp.cover <= 16);
  (* the beam is a heuristic: its answer is close to the exact one *)
  match (r.Podp.best, beamed.Podp.best) with
  | Some exact, Some beam ->
    Alcotest.(check bool) "beam within 10% of exact" true
      (beam.Cm.response_time <= exact.Cm.response_time *. 1.10 +. 1e-9)
  | _ -> Alcotest.fail "missing plan"

let plan_str (e : Cm.eval) = Parqo.Join_tree.to_string e.Cm.tree

let check_identical msg (a : Podp.result) (b : Podp.result) =
  (match (a.Podp.best, b.Podp.best) with
  | Some x, Some y ->
    Alcotest.(check string) (msg ^ ": best plan") (plan_str x) (plan_str y);
    (* bit identity, not epsilon: the parallel merge must replay the
       same float operations in the same order *)
    Alcotest.(check int64)
      (msg ^ ": best rt bits")
      (Int64.bits_of_float x.Cm.response_time)
      (Int64.bits_of_float y.Cm.response_time);
    Alcotest.(check int64)
      (msg ^ ": best work bits")
      (Int64.bits_of_float x.Cm.work)
      (Int64.bits_of_float y.Cm.work)
  | None, None -> ()
  | _ -> Alcotest.failf "%s: one run found a plan, the other did not" msg);
  Alcotest.(check (list string))
    (msg ^ ": cover")
    (List.map plan_str a.Podp.cover)
    (List.map plan_str b.Podp.cover);
  Alcotest.(check (list int))
    (msg ^ ": level sizes")
    (Array.to_list a.Podp.level_sizes)
    (Array.to_list b.Podp.level_sizes);
  Alcotest.(check int) (msg ^ ": generated") a.Podp.stats.Stats.generated
    b.Podp.stats.Stats.generated;
  Alcotest.(check int) (msg ^ ": considered") a.Podp.stats.Stats.considered
    b.Podp.stats.Stats.considered

(* The pool clamps [~domains] to the machine's cores, so on a one-core CI
   box plain [~domains:k] never leaves the calling domain.  The
   determinism properties must exercise REAL cross-domain execution:
   every parallel run here goes through an oversubscribed persistent
   pool, which forces k domains regardless of the core count. *)
let with_forced_pool k f = Parqo.Domain_pool.with_pool ~oversubscribe:true ~domains:k f

(* property: on random queries the domain-parallel search returns exactly
   the sequential result — best plan, cover and level sizes (the
   deterministic-merge contract of the level loop) — for pool widths
   below, at, and above the subset counts involved *)
let parallel_matches_sequential () =
  let rng = Parqo.Rng.create 21 in
  for _ = 1 to 3 do
    let env = Helpers.random_env rng ~n:4 in
    let config = { S.default_config with S.clone_degrees = [ 1; 2 ] } in
    let metric = metric_for env in
    let seq = Podp.optimize ~config ~metric env in
    List.iter
      (fun k ->
        with_forced_pool k (fun pool ->
            let par = Podp.optimize ~config ~metric ~pool env in
            check_identical (Printf.sprintf "domains=%d" k) seq par))
      [ 2; 3; 8 ]
  done

(* the beam path exercises the rank tie-break in Cover.trim; the pruned
   choice must also be identical across domain counts *)
let parallel_matches_sequential_beamed () =
  let rng = Parqo.Rng.create 22 in
  for _ = 1 to 2 do
    let env = Helpers.random_env rng ~n:5 in
    let config = { S.default_config with S.clone_degrees = [ 1; 2 ] } in
    let metric = metric_for env in
    let seq = Podp.optimize ~config ~metric ~max_cover:4 env in
    List.iter
      (fun k ->
        with_forced_pool k (fun pool ->
            let par = Podp.optimize ~config ~metric ~max_cover:4 ~pool env in
            check_identical (Printf.sprintf "beamed domains=%d" k) seq par))
      [ 3; 8 ]
  done

(* the sharded plan cache rides the same absorb barrier as the memo
   arenas: with incremental costing on, worker-computed entries are
   absorbed and republished per level, and the result must still be
   bit-identical to the sequential cached run at every width *)
let parallel_matches_sequential_cached () =
  let rng = Parqo.Rng.create 29 in
  for _ = 1 to 2 do
    let env = Helpers.random_env rng ~n:5 in
    let config = { S.default_config with S.clone_degrees = [ 1; 2 ] } in
    let metric = metric_for env in
    let seq =
      Podp.optimize ~config ~metric ~max_cover:3 ~plan_cache:true env
    in
    List.iter
      (fun k ->
        with_forced_pool k (fun pool ->
            let par =
              Podp.optimize ~config ~metric ~max_cover:3 ~plan_cache:true
                ~pool env
            in
            check_identical (Printf.sprintf "cached domains=%d" k) seq par))
      [ 2; 3; 8 ]
  done

(* one persistent pool across several searches: results identical to
   fresh-pool runs, and the reuse spawns no new domains *)
let persistent_pool_reuse () =
  let rng = Parqo.Rng.create 23 in
  with_forced_pool 3 (fun pool ->
      for _ = 1 to 3 do
        let env = Helpers.random_env rng ~n:4 in
        let config = { S.default_config with S.clone_degrees = [ 1; 2 ] } in
        let metric = metric_for env in
        let seq = Podp.optimize ~config ~metric env in
        let par = Podp.optimize ~config ~metric ~pool env in
        check_identical "persistent pool" seq par;
        Alcotest.(check int) "reuse spawned nothing" 0
          par.Podp.stats.Stats.pool.Parqo.Domain_pool.spawned;
        Alcotest.(check bool) "parallel regions ran" true
          (par.Podp.stats.Stats.pool.Parqo.Domain_pool.parallel_runs
           + par.Podp.stats.Stats.pool.Parqo.Domain_pool.sequential_runs
          > 0)
      done)

(* a starved budget reports gave_up no matter how many domains run — with
   both a tiny and a merely insufficient expansion cap *)
let gave_up_consistent_across_domains () =
  let env = env_of G.Chain 5 in
  let metric = metric_for env in
  List.iter
    (fun budget ->
      (* sequential baseline *)
      let r = Podp.optimize ~metric ~budget env in
      Alcotest.(check bool) "domains=1 gives up" true r.Podp.gave_up;
      List.iter
        (fun k ->
          with_forced_pool k (fun pool ->
              let r = Podp.optimize ~metric ~budget ~pool env in
              Alcotest.(check bool)
                (Printf.sprintf "domains=%d gives up" k)
                true r.Podp.gave_up))
        [ 2; 4 ])
    [ Parqo.Budget.expansions 1; Parqo.Budget.expansions 40 ]

(* level stats report what actually ran: never more lanes than the pool
   has, and exactly one lane for one-subset levels (the pool fast-paths
   them to the calling domain) *)
let used_domains_honest () =
  let env = env_of G.Chain 5 in
  let metric = metric_for env in
  with_forced_pool 3 (fun pool ->
      let r = Podp.optimize ~metric ~pool env in
      let levels = Stats.levels r.Podp.stats in
      List.iter
        (fun (l : Stats.level) ->
          Alcotest.(check bool)
            (Printf.sprintf "level %d: 1 <= domains <= width" l.Stats.level)
            true
            (l.Stats.domains >= 1 && l.Stats.domains <= 3);
          if l.Stats.subsets <= 1 then
            Alcotest.(check int)
              (Printf.sprintf "level %d fast-paths sequentially" l.Stats.level)
              1 l.Stats.domains)
        levels);
  (* sequential search: every level reports exactly one domain *)
  let seq = Podp.optimize ~metric env in
  List.iter
    (fun (l : Stats.level) ->
      Alcotest.(check int)
        (Printf.sprintf "sequential level %d" l.Stats.level)
        1 l.Stats.domains)
    (Stats.levels seq.Podp.stats)

(* per-level stats are recorded in level order, level 1 (access plans)
   first — the stored-size bookkeeping bug recorded level 1 last *)
let level_stats_in_order () =
  let env = env_of G.Chain 5 in
  let r = Podp.optimize ~metric:(metric_for env) env in
  let levels = Stats.levels r.Podp.stats in
  Alcotest.(check (list int)) "levels 1..n in order" [ 1; 2; 3; 4; 5 ]
    (List.map (fun (l : Stats.level) -> l.Stats.level) levels);
  List.iter
    (fun (l : Stats.level) ->
      Alcotest.(check int)
        (Printf.sprintf "level %d stored matches level_sizes" l.Stats.level)
        r.Podp.level_sizes.(l.Stats.level)
        l.Stats.stored;
      Alcotest.(check bool)
        (Printf.sprintf "level %d wall time non-negative" l.Stats.level)
        true
        (l.Stats.wall_ms >= 0.))
    levels;
  Alcotest.(check (list int)) "subset counts are C(5,k)" [ 5; 10; 10; 5; 1 ]
    (List.map (fun (l : Stats.level) -> l.Stats.subsets) levels)

let suite =
  ( "podp",
    [
      t "finds plans" finds_plans;
      t "parallel matches sequential" parallel_matches_sequential;
      t "parallel matches sequential (beamed)" parallel_matches_sequential_beamed;
      t "parallel matches sequential (cached)" parallel_matches_sequential_cached;
      t "persistent pool reuse" persistent_pool_reuse;
      t "gave-up consistent across domains" gave_up_consistent_across_domains;
      t "used_domains reports what ran" used_domains_honest;
      t "level stats in order" level_stats_in_order;
      t "final cover incomparable" final_cover_incomparable;
      t "no worse than naive RT DP" no_worse_than_rt_dp;
      t "optimal vs brute (delta=0)" optimal_vs_brute_delta0;
      t "near-optimal with delta" near_optimal_with_delta;
      t "work cap prunes" work_cap_prunes;
      t "cover sizes reasonable" cover_sizes_reasonable;
    ] )
