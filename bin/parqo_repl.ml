(* An interactive SQL shell over Parqo.Session.

   dune exec bin/parqo_repl.exe [-- WORKLOAD]

   Meta commands:
     \workload NAME    switch database (tpch, portfolio, university, chain)
     \tables           list tables
     \budget K         set the throughput-degradation budget
     \explain SQL      show the plan without executing
     \help             this text
     \q                quit
   Anything else is parsed as SQL. *)

let print_batch ?(limit = 20) (b : Parqo.Batch.t) =
  List.iteri
    (fun i row ->
      if i < limit then
        print_endline
          ("  ("
          ^ String.concat ", "
              (Array.to_list (Array.map Parqo.Value.to_string row))
          ^ ")"))
    b.Parqo.Batch.rows;
  if Parqo.Batch.n_rows b > limit then
    Printf.printf "  ... and %d more rows\n" (Parqo.Batch.n_rows b - limit)

let help () =
  print_endline
    "meta commands: \\workload NAME | \\tables | \\budget K | \\explain SQL \
     | \\help | \\q;\nanything else is SQL (SELECT ... FROM ... WHERE ... \
     [ORDER BY ...])"

let answer_line (a : Parqo.Session.answer) =
  let speedup =
    match a.Parqo.Session.work_optimal with
    | Some w ->
      Printf.sprintf ", %.1fx vs work-optimal plan"
        (w.Parqo.Costmodel.response_time
        /. a.Parqo.Session.plan.Parqo.Costmodel.response_time)
    | None -> ""
  in
  Printf.printf
    "%d rows in %.3fs (plan rt %.1f%s; parallel run verified: %b)\n"
    (Parqo.Batch.n_rows a.Parqo.Session.batch)
    a.Parqo.Session.elapsed
    a.Parqo.Session.plan.Parqo.Costmodel.response_time speedup
    a.Parqo.Session.verified

let main () =
  let initial = if Array.length Sys.argv > 1 then Sys.argv.(1) else "tpch" in
  let session =
    match Parqo.Session.of_workload initial with
    | Ok s -> ref s
    | Error e ->
      prerr_endline e;
      exit 1
  in
  Printf.printf "parqo repl — workload %s; \\help for help\n" initial;
  (try
     while true do
       print_string "parqo> ";
       let line = String.trim (input_line stdin) in
       if line = "" then ()
       else if line = "\\q" || line = "\\quit" then raise Exit
       else if line = "\\help" then help ()
       else if line = "\\tables" then
         print_endline (String.concat ", " (Parqo.Session.tables !session))
       else if String.length line > 9 && String.sub line 0 9 = "\\workload" then (
         let name = String.trim (String.sub line 9 (String.length line - 9)) in
         match Parqo.Session.of_workload name with
         | Ok s ->
           session := s;
           Printf.printf "switched to %s\n" name
         | Error e -> print_endline e)
       else if String.length line > 7 && String.sub line 0 7 = "\\budget" then (
         let k = String.trim (String.sub line 7 (String.length line - 7)) in
         match float_of_string_opt k with
         | Some k when k >= 1. ->
           Parqo.Session.set_bound !session
             (Parqo.Bounds.Throughput_degradation k);
           Printf.printf "budget set to %.2fx optimal work\n" k
         | _ -> print_endline "usage: \\budget K   (K >= 1)")
       else if String.length line > 8 && String.sub line 0 8 = "\\explain" then (
         let sql = String.trim (String.sub line 8 (String.length line - 8)) in
         match Parqo.Session.explain !session sql with
         | Ok text -> print_endline text
         | Error e -> print_endline ("error: " ^ e))
       else
         match Parqo.Session.sql !session line with
         | Ok a ->
           print_batch a.Parqo.Session.batch;
           answer_line a
         | Error e -> print_endline ("error: " ^ e)
     done
   with Exit | End_of_file -> print_endline "bye")

(* structured runtime errors print as one line, never as a backtrace *)
let () =
  try main ()
  with Parqo.Parqo_error.Error e ->
    prerr_endline (Parqo.Parqo_error.to_string e);
    exit 3
