(* parqo — command-line front end to the parallel query optimizer.

   Subcommands:
     optimize   optimize a SQL query over a generated workload
     explain    print the operator tree and descriptor of the chosen plan
     simulate   run the chosen plan through the execution simulator
     sweep      response time vs work-budget table
     gen        show a generated catalog and query
*)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* common arguments                                                    *)

let setup_logs =
  let init style_renderer level =
    Fmt_tty.setup_std_outputs ?style_renderer ();
    Logs.set_level level;
    Logs.set_reporter (Logs_fmt.reporter ())
  in
  Term.(const init $ Fmt_cli.style_renderer () $ Logs_cli.level ())

let shape_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "chain" -> Ok Parqo.Query_gen.Chain
    | "star" -> Ok Parqo.Query_gen.Star
    | "cycle" -> Ok Parqo.Query_gen.Cycle
    | "clique" -> Ok Parqo.Query_gen.Clique
    | _ -> Error (`Msg "expected chain|star|cycle|clique")
  in
  Arg.conv (parse, fun ppf s -> Fmt.string ppf (Parqo.Query_gen.shape_to_string s))

let shape =
  Arg.(value & opt shape_conv Parqo.Query_gen.Chain
       & info [ "shape" ] ~docv:"SHAPE" ~doc:"Join graph shape: chain, star, cycle or clique.")

let n_relations =
  Arg.(value & opt int 4
       & info [ "n"; "relations" ] ~docv:"N" ~doc:"Number of relations in the generated query.")

let nodes =
  Arg.(value & opt int 4
       & info [ "nodes" ] ~docv:"NODES" ~doc:"Shared-nothing machine size (sites).")

let budget =
  Arg.(value & opt (some float) None
       & info [ "k"; "budget" ] ~docv:"K"
           ~doc:"Throughput-degradation bound: admitted plans may use at most K times the optimal work.")

let search_domains =
  Arg.(value & opt int 1
       & info [ "search-domains" ] ~docv:"N"
           ~doc:"Worker domains for the partial-order DP search (default 1 = sequential). The chosen plan is bit-identical for every N; the pool clamps N to the machine's cores, so oversized values are safe.")

let bushy =
  Arg.(value & flag & info [ "bushy" ] ~doc:"Search bushy trees instead of left-deep.")

let no_plan_cache =
  Arg.(value & flag
       & info [ "no-plan-cache" ]
           ~doc:"Disable incremental sub-plan costing in the partial-order DP search. The chosen plan is bit-identical either way; this flag exists for benchmarking and debugging.")

let sql =
  Arg.(value & opt (some string) None
       & info [ "sql" ] ~docv:"SQL" ~doc:"Optimize this SQL query against the generated catalog instead of the generated join query.")

let plan_text =
  Arg.(value & opt (some string) None
       & info [ "plan" ] ~docv:"PLAN"
           ~doc:"Use this plan (Plan_io syntax, e.g. 'HJ/4!(scan(r0), scan(r1))') instead of optimizing.")

let fault_rate =
  Arg.(value & opt float 0.
       & info [ "fault-rate" ] ~docv:"F"
           ~doc:"Per-attempt fail-stop probability. Optimization becomes failure-aware (expected-makespan objective); simulation injects faults at this rate.")

let recovery_conv =
  let parse s =
    match Parqo.Recovery.of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (Parqo.Recovery.to_string p))

let recovery =
  Arg.(value & opt recovery_conv Parqo.Recovery.default
       & info [ "recovery" ] ~docv:"POLICY"
           ~doc:"Recovery policy for injected faults: retry (task retry with backoff), stage (restart the pipelined segment), sync (also recompute checkpoints lost to resource outages), or replan (re-optimize the residual query on the degraded machine when recovery crosses a sync point).")

let fault_seed =
  Arg.(value & opt int 0
       & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Seed of the fault-injection schedule.")

let replan_threshold =
  Arg.(value & opt float 0.5
       & info [ "replan-threshold" ] ~docv:"R"
           ~doc:"With --recovery replan: re-optimize once cumulative rework exceeds R times the plan's base work (checkpoint loss always triggers). Ignored for other policies.")

let setup shape n nodes sql =
  let catalog, query =
    Parqo.Query_gen.generate (Parqo.Query_gen.default_spec shape n)
  in
  let query =
    match sql with
    | None -> query
    | Some text -> Parqo.Sql.parse_exn ~catalog text
  in
  let machine = Parqo.Machine.shared_nothing ~nodes () in
  (Parqo.Env.create ~machine ~catalog ~query (), query, machine)

let optimize_env ?(fault_rate = 0.) ?(domains = 1) ?(plan_cache = true) env
    machine budget bushy =
  let config = Parqo.Space.parallel_config machine in
  let bound =
    match budget with
    | None -> Parqo.Bounds.Unbounded
    | Some k -> Parqo.Bounds.Throughput_degradation k
  in
  let shape_opt =
    if bushy then Parqo.Optimizer.Bushy else Parqo.Optimizer.Left_deep
  in
  if fault_rate > 0. then
    (* failure-aware: charge pipelined chains their expected
       re-execution cost and rank by the expected makespan *)
    Parqo.Optimizer.minimize_response_time ~config ~shape:shape_opt ~bound
      ~domains ~plan_cache
      ~metric:
        (Parqo.Metric.with_ordering
           (Parqo.Metric.expected_makespan env ~fault_rate))
      ~rank:(Parqo.Faultcost.expected_response_time env ~fault_rate)
      env
  else
    Parqo.Optimizer.minimize_response_time ~config ~shape:shape_opt ~bound
      ~domains ~plan_cache env

let report_outcome query (o : Parqo.Optimizer.outcome) =
  Printf.printf "query: %s\n\n" (Parqo.Query.to_sql query);
  (match o.Parqo.Optimizer.work_optimal with
  | Some w ->
    Printf.printf "work-optimal   : rt=%.2f work=%.2f  %s\n"
      w.Parqo.Costmodel.response_time w.Parqo.Costmodel.work
      (Parqo.Join_tree.to_string w.Parqo.Costmodel.tree)
  | None -> ());
  match o.Parqo.Optimizer.best with
  | Some b ->
    Printf.printf "response-time  : rt=%.2f work=%.2f  %s\n"
      b.Parqo.Costmodel.response_time b.Parqo.Costmodel.work
      (Parqo.Join_tree.to_string b.Parqo.Costmodel.tree);
    `Ok ()
  | None -> `Error (false, "no plan found")

(* ------------------------------------------------------------------ *)
(* subcommands                                                         *)

(* fail-stop rates are per-attempt probabilities; 1 would retry forever *)
let check_fault_rate fault_rate k =
  if fault_rate < 0. || fault_rate >= 1. then
    `Error (false, "--fault-rate must be in [0, 1)")
  else k ()

let report_search_stats (o : Parqo.Optimizer.outcome) =
  let print_phase name (s : Parqo.Search_stats.t) =
    Printf.printf "\n%s: %s\n" name (Format.asprintf "%a" Parqo.Search_stats.pp s);
    List.iter
      (fun l ->
        Printf.printf "  %s\n" (Format.asprintf "%a" Parqo.Search_stats.pp_level l))
      (Parqo.Search_stats.levels s)
  in
  print_phase "search" o.Parqo.Optimizer.stats;
  match o.Parqo.Optimizer.work_stats with
  | Some s -> print_phase "work phase" s
  | None -> ()

let show_stats =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print search statistics: plans considered/generated, cover \
                 peaks, the coordinator's GC allocation during the search, \
                 and one line per DP level (subsets, stored plans, per-level \
                 cover peak, wall time, domains).")

let optimize_cmd =
  let run () shape n nodes sql budget bushy fault_rate domains no_cache stats =
    check_fault_rate fault_rate @@ fun () ->
    let env, query, machine = setup shape n nodes sql in
    let o =
      optimize_env ~fault_rate ~domains ~plan_cache:(not no_cache) env machine
        budget bushy
    in
    let r = report_outcome query o in
    if stats then report_search_stats o;
    r
  in
  Cmd.v (Cmd.info "optimize" ~doc:"Minimize response time subject to a work bound.")
    Term.(ret (const run $ setup_logs $ shape $ n_relations $ nodes $ sql $ budget $ bushy $ fault_rate $ search_domains $ no_plan_cache $ show_stats))

(* either the optimizer's choice or an explicitly supplied plan *)
let chosen_plan ?fault_rate ?domains env query machine budget bushy plan_text =
  match plan_text with
  | Some text -> (
    match
      Parqo.Plan_io.of_string ~catalog:(Parqo.Env.catalog env) ~query text
    with
    | Ok tree -> Ok (Parqo.Costmodel.evaluate env tree)
    | Error e -> Error ("bad plan: " ^ e))
  | None -> (
    match
      (optimize_env ?fault_rate ?domains env machine budget bushy)
        .Parqo.Optimizer.best
    with
    | Some b -> Ok b
    | None -> Error "no plan found")

let explain_cmd =
  let run () shape n nodes sql budget bushy plan_text domains =
    let env, query, machine = setup shape n nodes sql in
    match chosen_plan ~domains env query machine budget bushy plan_text with
    | Error e -> `Error (false, e)
    | Ok b ->
      Printf.printf "query: %s\n\n" (Parqo.Query.to_sql query);
      print_endline (Parqo.Explain.explain_plan env b.Parqo.Costmodel.tree);
      Format.printf "@.descriptor: %a@." Parqo.Descriptor.pp
        b.Parqo.Costmodel.descriptor;
      `Ok ()
  in
  Cmd.v (Cmd.info "explain" ~doc:"Show the chosen plan's operator tree and cost descriptor.")
    Term.(ret (const run $ setup_logs $ shape $ n_relations $ nodes $ sql $ budget $ bushy $ plan_text $ search_domains))

let simulate_cmd =
  let run () shape n nodes sql budget bushy plan_text fault_rate recovery
      fault_seed replan_threshold domains =
    check_fault_rate fault_rate @@ fun () ->
    let env, query, machine = setup shape n nodes sql in
    match
      chosen_plan ~fault_rate ~domains env query machine budget bushy plan_text
    with
    | Error e -> `Error (false, e)
    | Ok b ->
      Printf.printf "query: %s\nplan : %s\n\n" (Parqo.Query.to_sql query)
        (Parqo.Join_tree.to_string b.Parqo.Costmodel.tree);
      let faults =
        if fault_rate > 0. then
          Some (Parqo.Fault.default ~seed:fault_seed ~fault_rate ())
        else None
      in
      let recovery =
        match recovery with
        | Parqo.Recovery.Replan _ ->
          Parqo.Recovery.replan ~threshold:replan_threshold ()
        | other -> other
      in
      let result =
        Parqo.Adaptive.simulate ?faults ~recovery env b.Parqo.Costmodel.tree
      in
      let sim = result.Parqo.Adaptive.outcome in
      List.iter
        (fun (e : Parqo.Simulator.event) ->
          Printf.printf "  t=%10.2f  %s\n" e.Parqo.Simulator.at
            e.Parqo.Simulator.what)
        sim.Parqo.Simulator.trace;
      Printf.printf "\n%s" (Parqo.Simulator.timeline sim);
      Printf.printf
        "\npredicted rt %.2f | simulated makespan %.2f | utilization %.0f%%\n"
        b.Parqo.Costmodel.response_time sim.Parqo.Simulator.makespan
        (100. *. Parqo.Simulator.utilization sim);
      if fault_rate > 0. then begin
        Printf.printf
          "faults %d | retries %d | replans %d (policy %s, seed %d)\n"
          sim.Parqo.Simulator.n_faults sim.Parqo.Simulator.n_retries
          sim.Parqo.Simulator.n_replans
          (Parqo.Recovery.to_string recovery)
          fault_seed;
        List.iter
          (fun (r : Parqo.Adaptive.replan_record) ->
            Printf.printf
              "  replan at %.2f (%s): %s — %d rels, %d checkpoints, %d considered%s\n"
              r.Parqo.Adaptive.at
              (Parqo.Simulator.trigger_to_string r.Parqo.Adaptive.trigger)
              r.Parqo.Adaptive.plan_key r.Parqo.Adaptive.n_relations
              r.Parqo.Adaptive.n_checkpoints r.Parqo.Adaptive.considered
              (if r.Parqo.Adaptive.gave_up then " (greedy fallback)" else ""))
          result.Parqo.Adaptive.records
      end;
      `Ok ()
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Simulate the chosen plan's parallel execution, optionally under injected faults.")
    Term.(ret (const run $ setup_logs $ shape $ n_relations $ nodes $ sql $ budget $ bushy $ plan_text $ fault_rate $ recovery $ fault_seed $ replan_threshold $ search_domains))

let sweep_cmd =
  let run () shape n nodes sql bushy domains =
    let env, query, machine = setup shape n nodes sql in
    Printf.printf "query: %s\n\n" (Parqo.Query.to_sql query);
    let tbl =
      Parqo.Tableau.create ~title:"response time vs work budget"
        ~columns:
          [
            ("k", Parqo.Tableau.Right);
            ("rt", Parqo.Tableau.Right);
            ("work", Parqo.Tableau.Right);
            ("plan", Parqo.Tableau.Left);
          ]
    in
    List.iter
      (fun k ->
        let o = optimize_env ~domains env machine (Some k) bushy in
        match o.Parqo.Optimizer.best with
        | Some b ->
          Parqo.Tableau.add_row tbl
            [
              Parqo.Tableau.cell_float k;
              Parqo.Tableau.cell_float b.Parqo.Costmodel.response_time;
              Parqo.Tableau.cell_float b.Parqo.Costmodel.work;
              Parqo.Join_tree.to_string b.Parqo.Costmodel.tree;
            ]
        | None -> ())
      [ 1.0; 1.25; 1.5; 2.0; 3.0; 5.0 ];
    Parqo.Tableau.print tbl;
    `Ok ()
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Sweep the work budget and print the tradeoff table.")
    Term.(ret (const run $ setup_logs $ shape $ n_relations $ nodes $ sql $ bushy $ search_domains))

let gen_cmd =
  let run () shape n =
    let catalog, query =
      Parqo.Query_gen.generate (Parqo.Query_gen.default_spec shape n)
    in
    Format.printf "%a@.@." Parqo.Catalog.pp catalog;
    Printf.printf "query: %s\n" (Parqo.Query.to_sql query)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Print the generated catalog and query.")
    Term.(const run $ setup_logs $ shape $ n_relations)

(* execute a query end-to-end on a canned materialized workload *)
let run_cmd =
  let workload =
    Arg.(value & opt string "tpch:q3"
         & info [ "workload" ] ~docv:"W"
             ~doc:"One of tpch:q3, tpch:q5, tpch:q10, portfolio, university, chain.")
  in
  let limit =
    Arg.(value & opt int 10
         & info [ "limit" ] ~docv:"N" ~doc:"Rows to display.")
  in
  let run () workload limit nodes budget domains =
    let pick = function
      | "tpch:q3" -> let w = Parqo.Workloads.tpch ~seed:7 () in Ok (w.Parqo.Workloads.db, w.Parqo.Workloads.q3)
      | "tpch:q5" -> let w = Parqo.Workloads.tpch ~seed:7 () in Ok (w.Parqo.Workloads.db, w.Parqo.Workloads.q5)
      | "tpch:q10" -> let w = Parqo.Workloads.tpch ~seed:7 () in Ok (w.Parqo.Workloads.db, w.Parqo.Workloads.q10)
      | "portfolio" -> Ok (Parqo.Workloads.portfolio ~seed:7 ())
      | "university" -> Ok (Parqo.Workloads.university ~seed:7 ())
      | "chain" -> Ok (Parqo.Workloads.chain_db ~seed:7 ())
      | w -> Error ("unknown workload " ^ w)
    in
    match pick workload with
    | Error e -> `Error (false, e)
    | Ok (db, query) -> (
      let machine = Parqo.Machine.shared_nothing ~nodes () in
      let env =
        Parqo.Env.create ~machine ~catalog:db.Parqo.Datagen.catalog ~query ()
      in
      let o = optimize_env ~domains env machine budget false in
      match o.Parqo.Optimizer.best with
      | None -> `Error (false, "no plan found")
      | Some b ->
        Printf.printf "query: %s\nplan : %s  (rt %.1f, work %.1f)\n\n"
          (Parqo.Query.to_sql query)
          (Parqo.Join_tree.to_string b.Parqo.Costmodel.tree)
          b.Parqo.Costmodel.response_time b.Parqo.Costmodel.work;
        let result =
          Parqo.Parallel_exec.run_query db query b.Parqo.Costmodel.optree
        in
        let check =
          Parqo.Batch.equal_bags result
            (Parqo.Executor.run_query db query b.Parqo.Costmodel.tree)
        in
        Printf.printf "%d rows (parallel execution; agrees with sequential: %b)\n"
          (Parqo.Batch.n_rows result) check;
        List.iteri
          (fun i row ->
            if i < limit then
              Printf.printf "  (%s)\n"
                (String.concat ", "
                   (Array.to_list (Array.map Parqo.Value.to_string row))))
          result.Parqo.Batch.rows;
        if Parqo.Batch.n_rows result > limit then
          Printf.printf "  ... and %d more\n" (Parqo.Batch.n_rows result - limit);
        `Ok ())
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Optimize and execute a query on a canned materialized workload.")
    Term.(ret (const run $ setup_logs $ workload $ limit $ nodes $ budget $ search_domains))

(* the optimizer as a service: a synthetic request stream against a
   query pool, with deadlines, load shedding and optional chaos *)
let serve_cmd =
  let module Server = Parqo_serve.Server in
  let module Chaos = Parqo_serve.Chaos in
  let tables =
    Arg.(value & opt int 6
         & info [ "tables" ] ~docv:"N" ~doc:"Tables in the serving catalog.")
  in
  let pool =
    Arg.(value & opt int 24
         & info [ "pool" ] ~docv:"N" ~doc:"Distinct queries in the pool.")
  in
  let n_requests =
    Arg.(value & opt int 200
         & info [ "requests" ] ~docv:"N" ~doc:"Requests in the stream.")
  in
  let arrival =
    Arg.(value
         & opt (enum [ ("uniform", `Uniform); ("poisson", `Poisson); ("burst", `Burst) ]) `Poisson
         & info [ "arrival" ] ~docv:"PROCESS"
             ~doc:"Arrival process: $(b,uniform), $(b,poisson) or $(b,burst).")
  in
  let rate =
    Arg.(value & opt float 100.
         & info [ "rate" ] ~docv:"QPS"
             ~doc:"Arrival rate for uniform/poisson, queries per second.")
  in
  let burst_size =
    Arg.(value & opt int 20
         & info [ "burst-size" ] ~docv:"N" ~doc:"Arrivals per burst.")
  in
  let burst_period =
    Arg.(value & opt float 0.2
         & info [ "burst-period" ] ~docv:"S" ~doc:"Seconds between bursts.")
  in
  let deadline_ms =
    Arg.(value & opt float 100.
         & info [ "deadline" ] ~docv:"MS"
             ~doc:"Per-request deadline in milliseconds; expired requests degrade to the greedy plan.")
  in
  let queue_cap =
    Arg.(value & opt int 32
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Max requests in flight; arrivals beyond it are shed.")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Simulated optimizer workers.")
  in
  let chaos =
    Arg.(value & flag
         & info [ "chaos" ]
             ~doc:"Inject server-side chaos: slow requests, transient failures, mid-request catalog epoch bumps.")
  in
  let chaos_seed =
    Arg.(value & opt int 0
         & info [ "chaos-seed" ] ~docv:"SEED" ~doc:"Seed of the chaos schedule.")
  in
  let seed =
    Arg.(value & opt int 7
         & info [ "seed" ] ~docv:"SEED" ~doc:"Seed of the pool and the stream.")
  in
  let run () tables pool n arrival rate burst_size burst_period deadline_ms
      queue_cap workers chaos chaos_seed seed nodes =
    if deadline_ms <= 0. then `Error (false, "--deadline must be > 0")
    else begin
      let catalog, queries =
        Parqo.Workloads.serving_pool ~n_tables:tables ~pool ~seed ()
      in
      let process =
        match arrival with
        | `Uniform -> Parqo.Workloads.Uniform rate
        | `Poisson -> Parqo.Workloads.Poisson rate
        | `Burst ->
          Parqo.Workloads.Burst { size = burst_size; period = burst_period }
      in
      let rng = Parqo.Rng.create seed in
      let arrivals = Parqo.Workloads.arrivals rng ~process ~n in
      let reqs =
        Server.requests rng ~pool:queries ~arrivals
          ~deadline:(deadline_ms /. 1000.) ()
      in
      let config =
        {
          Server.default_config with
          Server.queue_cap;
          workers;
          chaos =
            (if chaos then Chaos.default ~seed:chaos_seed () else Chaos.none);
        }
      in
      let machine = Parqo.Machine.shared_nothing ~nodes () in
      let server = Server.create ~config ~machine ~catalog () in
      let r = Server.run server reqs in
      let s = r.Server.stats in
      Printf.printf
        "served %d requests (%s, pool %d, %d workers, queue cap %d%s)\n"
        s.Server.n_requests
        (Parqo.Workloads.arrival_to_string process)
        pool workers queue_cap
        (if chaos then ", chaos on" else "");
      Printf.printf "  planned %d | degraded %d | rejected %d\n"
        s.Server.planned s.Server.degraded s.Server.rejected;
      Printf.printf "  retries %d | epoch bumps %d | cache %d hits / %d misses\n"
        s.Server.retries s.Server.epoch_bumps s.Server.cache_hits
        s.Server.cache_misses;
      Printf.printf
        "  throughput %.1f qps | max in flight %d | latency p50 %.1fms p95 %.1fms p99 %.1fms\n"
        s.Server.throughput_qps s.Server.max_in_flight
        (1000. *. s.Server.p50) (1000. *. s.Server.p95) (1000. *. s.Server.p99);
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a synthetic optimization-request stream with deadlines, load shedding and optional chaos.")
    Term.(ret (const run $ setup_logs $ tables $ pool $ n_requests $ arrival $ rate $ burst_size $ burst_period $ deadline_ms $ queue_cap $ workers $ chaos $ chaos_seed $ seed $ nodes))

(* co-schedule a workload of optimized plans on one machine and report
   per-query response times under a scheduling policy *)
let sched_cmd =
  let module Sched = Parqo.Scheduler in
  let tables =
    Arg.(value & opt int 6
         & info [ "tables" ] ~docv:"N" ~doc:"Tables in the workload catalog.")
  in
  let pool =
    Arg.(value & opt int 24
         & info [ "pool" ] ~docv:"N" ~doc:"Distinct queries in the pool.")
  in
  let n_queries =
    Arg.(value & opt int 20
         & info [ "queries" ] ~docv:"N" ~doc:"Queries in the workload.")
  in
  let arrival =
    Arg.(value
         & opt (enum [ ("uniform", `Uniform); ("poisson", `Poisson); ("burst", `Burst) ]) `Poisson
         & info [ "arrival" ] ~docv:"PROCESS"
             ~doc:"Arrival process: $(b,uniform), $(b,poisson) or $(b,burst).")
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "rate" ] ~docv:"R"
             ~doc:"Arrival rate in queries per simulated second. Default: one arrival per mean solo makespan (moderate load).")
  in
  let burst_size =
    Arg.(value & opt int 8
         & info [ "burst-size" ] ~docv:"N" ~doc:"Arrivals per burst.")
  in
  let burst_period =
    Arg.(value & opt (some float) None
         & info [ "burst-period" ] ~docv:"S"
             ~doc:"Simulated seconds between bursts. Default: one mean solo makespan.")
  in
  let policy =
    let policy_conv =
      let parse s =
        if String.lowercase_ascii s = "all" then Ok None
        else
          match Sched.policy_of_string s with
          | Ok p -> Ok (Some p)
          | Error e -> Error (`Msg e)
      in
      Arg.conv
        ( parse,
          fun ppf -> function
            | None -> Fmt.string ppf "all"
            | Some p -> Fmt.string ppf (Sched.policy_to_string p) )
    in
    Arg.(value & opt policy_conv None
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Scheduling policy: $(b,fair), $(b,priority), $(b,srw) or $(b,all) (default).")
  in
  let contention =
    Arg.(value & flag
         & info [ "contention" ]
             ~doc:"Also re-optimize the pool under the workload's expected pressure and report which queries switch to lower-work plans.")
  in
  let seed =
    Arg.(value & opt int 7
         & info [ "seed" ] ~docv:"SEED" ~doc:"Seed of the pool and the stream.")
  in
  let run () tables pool n arrival rate burst_size burst_period policy
      contention seed nodes =
    if n <= 0 then `Error (false, "--queries must be > 0")
    else begin
      let machine = Parqo.Machine.shared_nothing ~nodes () in
      let catalog, queries =
        Parqo.Workloads.serving_pool ~n_tables:tables ~pool ~seed ()
      in
      let budget = Parqo.Budget.expansions 20_000 in
      let config = Parqo.Space.parallel_config machine in
      let plans = Hashtbl.create 32 in
      let plan_of q =
        let fp = Parqo.Query.fingerprint q in
        match Hashtbl.find_opt plans fp with
        | Some p -> p
        | None ->
          let env = Parqo.Env.create ~machine ~catalog ~query:q () in
          (match
             (Parqo.Optimizer.minimize_response_time ~config ~budget env)
               .Parqo.Optimizer.best
           with
          | None -> Parqo.Parqo_error.failf ~subsystem:"cli" "no plan for %s" fp
          | Some best ->
            let p = (env, best) in
            Hashtbl.add plans fp p;
            p)
      in
      let rng = Parqo.Rng.create seed in
      let picks = Array.init n (fun _ -> Parqo.Rng.pick rng queries) in
      let graphs =
        Array.map
          (fun q ->
            let env, best = plan_of q in
            Parqo.Task_graph.of_optree env best.Parqo.Costmodel.optree)
          picks
      in
      let mean_solo =
        Array.fold_left
          (fun acc g -> acc +. (Parqo.Simulator.run g).Parqo.Simulator.makespan)
          0. graphs
        /. float_of_int n
      in
      let rate = match rate with Some r -> r | None -> 1. /. mean_solo in
      let process =
        match arrival with
        | `Uniform -> Parqo.Workloads.Uniform rate
        | `Poisson -> Parqo.Workloads.Poisson rate
        | `Burst ->
          let period =
            match burst_period with Some p -> p | None -> mean_solo
          in
          Parqo.Workloads.Burst { size = burst_size; period }
      in
      let arrivals = Parqo.Workloads.arrivals rng ~process ~n in
      let jobs =
        Array.mapi
          (fun i g ->
            Sched.job ~arrival:arrivals.(i) ~priority:(Parqo.Rng.int rng 3)
              ~job_id:i g)
          graphs
      in
      let policies =
        match policy with Some p -> [ p ] | None -> Sched.all_policies
      in
      Printf.printf
        "workload: %d queries over a %d-query pool (%s, %d-node machine)\n"
        n pool
        (Parqo.Workloads.arrival_to_string process)
        nodes;
      List.iter
        (fun p ->
          let o = Sched.run ~policy:p jobs in
          let s = Sched.summarize o in
          Printf.printf
            "  %-8s mean %10.1f | p95 %10.1f | p99 %10.1f | makespan %10.1f | util %.3f\n"
            (Sched.policy_to_string p) s.Sched.mean s.Sched.p95 s.Sched.p99
            s.Sched.makespan s.Sched.utilization)
        policies;
      if contention then begin
        let nr = Parqo.Machine.n_resources machine in
        let pressure = Sched.expected_pressure ~n_resources:nr jobs in
        let peak = Array.fold_left Float.max 0. pressure in
        let switched = ref 0 and total = ref 0 in
        Hashtbl.iter
          (fun _ (env, (solo : Parqo.Costmodel.eval)) ->
            incr total;
            match
              (Parqo.Optimizer.minimize_under_contention ~config ~budget
                 ~pressure env)
                .Parqo.Optimizer.best
            with
            | Some c when c.Parqo.Costmodel.work < solo.Parqo.Costmodel.work ->
              incr switched;
              if !switched = 1 then
                Printf.printf
                  "  e.g. work %.1f -> %.1f (solo response %.1f -> %.1f)\n"
                  solo.Parqo.Costmodel.work c.Parqo.Costmodel.work
                  solo.Parqo.Costmodel.response_time
                  c.Parqo.Costmodel.response_time
            | _ -> ())
          plans;
        Printf.printf
          "contention-aware re-optimization (peak pressure %.2f): %d/%d pool queries switch to lower-work plans\n"
          peak !switched !total
      end;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:"Co-schedule a workload of optimized queries on one machine under fair-share, strict-priority or shortest-remaining-work.")
    Term.(ret (const run $ setup_logs $ tables $ pool $ n_queries $ arrival $ rate $ burst_size $ burst_period $ policy $ contention $ seed $ nodes))

(* heterogeneous degradation and elastic recovery: brownout and
   scale-out events against the static and adaptive policies *)
let hetero_cmd =
  let module M = Parqo.Machine in
  let module F = Parqo.Fault in
  let module Sim = Parqo.Simulator in
  let factor =
    Arg.(value & opt float 0.25
         & info [ "factor" ] ~docv:"F"
             ~doc:"Remaining capacity of the browned-out CPU, in (0, 1). 1 disables the slowdown scenario.")
  in
  let slow_at =
    Arg.(value & opt float 0.1
         & info [ "slow-at" ] ~docv:"FRAC"
             ~doc:"Brownout onset as a fraction of the clean makespan.")
  in
  let slow_duration =
    Arg.(value & opt float 2.0
         & info [ "slow-duration" ] ~docv:"MULT"
             ~doc:"Brownout duration as a multiple of the clean makespan.")
  in
  let grow_at =
    Arg.(value & opt float 0.3
         & info [ "grow-at" ] ~docv:"FRAC"
             ~doc:"Scale-out onset as a fraction of the clean makespan. Negative disables the scale-out scenario.")
  in
  let grow_speed =
    Arg.(value & opt float 2.0
         & info [ "grow-speed" ] ~docv:"S"
             ~doc:"Static relative speed of the CPU that joins at the scale-out onset.")
  in
  let run () shape n nodes sql factor slow_at slow_duration grow_at grow_speed =
    if factor <= 0. || factor > 1. then
      `Error (false, "--factor must be in (0, 1]")
    else if grow_speed <= 0. then `Error (false, "--grow-speed must be > 0")
    else begin
      let env, _query, machine = setup shape n nodes sql in
      let outcome = optimize_env env machine None false in
      match outcome.Parqo.Optimizer.best with
      | None -> `Error (false, "no plan found")
      | Some best ->
        let optree =
          Parqo.Expand.expand ~config:env.Parqo.Env.expand_config
            env.Parqo.Env.estimator best.Parqo.Costmodel.tree
        in
        let g = Parqo.Task_graph.of_optree env optree in
        let clean = Sim.run g in
        Printf.printf "clean makespan: %.2f\n" clean.Sim.makespan;
        let contrast what faults =
          let static_sim =
            Sim.run ~faults ~recovery:Parqo.Recovery.Restart_from_sync g
          in
          let adaptive =
            Parqo.Adaptive.simulate ~faults
              ~recovery:(Parqo.Recovery.replan ()) env
              best.Parqo.Costmodel.tree
          in
          let o = adaptive.Parqo.Adaptive.outcome in
          Printf.printf
            "%s: static %.2f | adaptive %.2f (static/adapt %.3f, %d replans)\n"
            what static_sim.Sim.makespan o.Sim.makespan
            (static_sim.Sim.makespan /. o.Sim.makespan)
            o.Sim.n_replans;
          o
        in
        if factor < 1. then begin
          (* brown out the CPU the clean run leaned on hardest *)
          let target =
            List.fold_left
              (fun acc id ->
                match acc with
                | Some a when clean.Sim.busy.(a) >= clean.Sim.busy.(id) -> acc
                | _ -> Some id)
              None (M.cpu_ids machine)
            |> Option.get
          in
          let outage =
            F.brownout ~resource:target ~at:(slow_at *. clean.Sim.makespan)
              ~duration:(slow_duration *. clean.Sim.makespan) ~factor
          in
          ignore
            (contrast
               (Printf.sprintf "brownout (cpu %d at factor %.2f)" target factor)
               { F.none with F.outages = [ outage ] })
        end;
        if grow_at >= 0. then begin
          let grow =
            {
              F.g_at = grow_at *. clean.Sim.makespan;
              g_kind = Parqo.Resource.Cpu;
              g_node = 0;
              g_speed = grow_speed;
            }
          in
          let o =
            contrast
              (Printf.sprintf "scale-out (speed-%.1f cpu at %.2f of makespan)"
                 grow_speed grow_at)
              { F.none with F.grows = [ grow ] }
          in
          let grown_id = M.n_resources machine in
          if Array.length o.Sim.busy > grown_id then
            Printf.printf "grown resource %d delivered work: %.2f\n" grown_id
              o.Sim.busy.(grown_id)
        end;
        `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "hetero"
       ~doc:"Measure static vs adaptive recovery when the machine slows down (brownout) or grows back (scale-out) mid-query.")
    Term.(ret (const run $ setup_logs $ shape $ n_relations $ nodes $ sql
               $ factor $ slow_at $ slow_duration $ grow_at $ grow_speed))

let main =
  let doc = "parallel query optimizer (SIGMOD 1992 reproduction)" in
  Cmd.group (Cmd.info "parqo" ~doc)
    [ optimize_cmd; explain_cmd; simulate_cmd; sweep_cmd; gen_cmd; run_cmd;
      serve_cmd; sched_cmd; hetero_cmd ]

(* structured runtime errors print as one line, never as a backtrace *)
let () =
  try exit (Cmd.eval main)
  with Parqo.Parqo_error.Error e ->
    prerr_endline (Parqo.Parqo_error.to_string e);
    exit 3
